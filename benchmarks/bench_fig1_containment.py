"""E4 / Figure 1 — containment detection with star sequences.

Regenerates: Figure 1's packing scenario (t0 = 5 s, t1 = 1 s) as a
quantitative experiment — accuracy of ``SEQ(R1*, R2) MODE CHRONICLE``
against ground truth across case sizes and overlap (Figure 1(b)), and the
expressiveness comparison the paper uses to motivate star sequences: the
join baseline cannot express ``R1*`` at all.

Expected shape: exact containment recovery with and without overlapping
cases; the join baseline's `supports_star` is False (section 2.2: the
pattern "cannot be expressed using regular join operators").
"""

from collections import defaultdict

from repro.baselines import join_baseline
from repro.bench import ResultTable, containment_accuracy
from repro.rfid import build_containment, packing_workload


def detect(workload):
    scenario = build_containment(workload, per_item=True).feed()
    grouped = defaultdict(list)
    for row in scenario.rows():
        grouped[row["tagid_2"]].append(row["tagid"])
    return scenario, containment_accuracy(list(grouped.items()), workload.truth)


def test_containment_accuracy_table(table_printer):
    table = ResultTable(
        "E4/Fig1  Containment via SEQ(R1*, R2) MODE CHRONICLE "
        "(t0=5s, t1=1s)",
        ["cases", "max_items", "overlap", "readings", "detected_cases",
         "precision", "recall"],
    )
    for n_cases, max_items, overlap in (
        (10, 4, False), (10, 4, True),
        (40, 8, False), (40, 8, True),
        (80, 12, True),
    ):
        workload = packing_workload(
            n_cases=n_cases, products_per_case=(2, max_items),
            overlap_next_case=overlap, seed=101 + n_cases,
        )
        scenario, accuracy = detect(workload)
        detected_cases = len(
            {row["tagid_2"] for row in scenario.rows()}
        )
        table.add(n_cases, max_items, overlap, len(workload.trace),
                  detected_cases, accuracy.precision, accuracy.recall)
        assert accuracy.exact, (
            f"containment must be exact (cases={n_cases}, overlap={overlap})"
        )
    table_printer(table)


def test_join_baseline_cannot_express_star():
    """The motivating claim of section 2.2, verified as a capability flag."""
    assert join_baseline.supports_star is False


def test_containment_throughput(benchmark):
    workload = packing_workload(n_cases=60, seed=103)

    def run():
        scenario = build_containment(workload)
        scenario.feed()
        return len(scenario.rows())

    detected = benchmark(run)
    assert detected == len(workload.truth)
