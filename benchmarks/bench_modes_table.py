"""E6b — the section 3.1.1 worked example, reproduced as a table.

Regenerates: the paper's only fully worked result — the joint tuple
history ``[t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4]`` evaluated
under all four Tuple Pairing Modes.

Expected (from the paper, verbatim):

* UNRESTRICTED -> 4 events
* RECENT       -> 1 event  (t2, t3, t5, t7)
* CHRONICLE    -> 1 event  (t1, t3, t4, t7)
* CONSECUTIVE  -> 0 events

Also characterizes per-mode event counts and state on a longer random
trace, quantifying the paper's "generation of large amounts of composite
events, many of which are not useful" argument.
"""

from repro.bench import ResultTable
from repro.core.operators import PairingMode, SeqArg, make_sequence_operator
from repro.dsms import Engine
from repro.rfid import uniform_sequence_workload

PAPER_TRACE = [
    ("c1", 1.0), ("c1", 2.0), ("c2", 3.0), ("c3", 4.0),
    ("c3", 5.0), ("c2", 6.0), ("c4", 7.0),
]

EXPECTED_EVENTS = {
    PairingMode.UNRESTRICTED: 4,
    PairingMode.RECENT: 1,
    PairingMode.CHRONICLE: 1,
    PairingMode.CONSECUTIVE: 0,
}

EXPECTED_CHAINS = {
    PairingMode.RECENT: [(2.0, 3.0, 5.0, 7.0)],
    PairingMode.CHRONICLE: [(1.0, 3.0, 4.0, 7.0)],
}


def run_paper_trace(mode):
    engine = Engine()
    for name in ("c1", "c2", "c3", "c4"):
        engine.create_stream(name, "tagid str, tagtime float")
    op = make_sequence_operator(
        engine, [SeqArg(n) for n in ("c1", "c2", "c3", "c4")], mode=mode
    )
    for stream, ts in PAPER_TRACE:
        engine.push(stream, {"tagid": "x", "tagtime": ts}, ts=ts)
    return op


def test_worked_example_table(table_printer):
    table = ResultTable(
        "E6b  Section 3.1.1 worked example "
        "[t1:C1 t2:C1 t3:C2 t4:C3 t5:C3 t6:C2 t7:C4]",
        ["mode", "events", "paper_says", "chains"],
    )
    for mode in PairingMode:
        op = run_paper_trace(mode)
        chains = [
            tuple(t.ts for t in m.all_tuples()) for m in op.matches
        ]
        table.add(
            mode.value.upper(), len(op.matches), EXPECTED_EVENTS[mode],
            " ".join(str(c) for c in chains) or "-",
        )
        assert len(op.matches) == EXPECTED_EVENTS[mode]
        if mode in EXPECTED_CHAINS:
            assert chains == EXPECTED_CHAINS[mode]
    table_printer(table)


def test_mode_event_explosion(table_printer):
    """UNRESTRICTED event counts explode on unstructured traces; the
    restricted modes stay linear — the paper's motivation for pairing
    modes."""
    table = ResultTable(
        "E6b+  Event counts per mode, random 3-stream trace",
        ["tuples", "unrestricted", "recent", "chronicle", "consecutive"],
    )
    for n_tuples in (100, 200, 400):
        counts = {}
        for mode in PairingMode:
            engine = Engine()
            for index in range(3):
                engine.create_stream(f"s{index}", "tagid str, tagtime float")
            op = make_sequence_operator(
                engine, [SeqArg(f"s{i}") for i in range(3)], mode=mode,
                store_matches=False,
            )
            workload = uniform_sequence_workload(
                n_streams=3, n_tuples=n_tuples, seed=131
            )
            engine.run_trace(workload.trace)
            counts[mode] = op.matches_emitted
        table.add(n_tuples, counts[PairingMode.UNRESTRICTED],
                  counts[PairingMode.RECENT], counts[PairingMode.CHRONICLE],
                  counts[PairingMode.CONSECUTIVE])
        anchors_bound = n_tuples  # no mode can exceed one event per anchor...
        assert counts[PairingMode.RECENT] <= anchors_bound
        assert counts[PairingMode.CHRONICLE] <= anchors_bound
        assert counts[PairingMode.CONSECUTIVE] <= anchors_bound
        # ...while UNRESTRICTED explodes combinatorially.
        assert counts[PairingMode.UNRESTRICTED] >= 5 * counts[PairingMode.RECENT]
    table_printer(table)


def test_unrestricted_throughput(benchmark):
    workload = uniform_sequence_workload(n_streams=4, n_tuples=300, seed=132)

    def run():
        engine = Engine()
        for index in range(4):
            engine.create_stream(f"s{index}", "tagid str, tagtime float")
        op = make_sequence_operator(
            engine, [SeqArg(f"s{i}") for i in range(4)],
            mode=PairingMode.RECENT,
        )
        engine.run_trace(workload.trace)
        return op.matches_emitted

    benchmark(run)
