"""E3 — Example 3: EPC-pattern aggregation.

Regenerates: the running count of EPCs matching ``20.*.(5000,9999)`` under
the paper's verbatim LIKE + extract_serial query, checked against ground
truth across selectivities; and the equivalence of the structured
EpcPattern -> SQL translation.

Expected shape: SQL count == ground truth at every selectivity; the
pattern-API translation agrees with the hand-written predicate.
"""

from repro.bench import ResultTable
from repro.dsms import Engine
from repro.epc import EpcPattern, pattern_to_sql
from repro.rfid import build_epc_aggregation, epc_stream_workload


def test_epc_aggregation_selectivity(table_printer):
    table = ResultTable(
        "E3  Example 3: EPC pattern aggregation (20.*.(5000-9999))",
        ["companies", "readings", "matches", "selectivity", "truth_match"],
    )
    for companies in ((20,), (20, 21), (20, 21, 37, 55)):
        workload = epc_stream_workload(
            n_readings=1500, companies=companies, seed=91
        )
        scenario = build_epc_aggregation(workload).feed()
        rows = scenario.rows()
        final = rows[-1]["count_tid"] if rows else 0
        table.add(
            len(companies), len(workload.trace), final,
            final / len(workload.trace), final == workload.truth["paper_count"],
        )
        assert final == workload.truth["paper_count"]
    table_printer(table)


def test_pattern_translation_equivalence():
    workload = epc_stream_workload(n_readings=800, seed=92)
    pattern = EpcPattern("20.*.[5000-9999]")
    engine = Engine()
    engine.create_stream("readings", "reader_id str, tid str, read_time float")
    handle = engine.query(
        f"SELECT count(tid) FROM readings WHERE {pattern_to_sql(pattern)}"
    )
    engine.run_trace(workload.trace)
    rows = handle.rows()
    final = rows[-1]["count_tid"] if rows else 0
    assert final == workload.truth["pattern_count"]


def test_epc_throughput(benchmark):
    workload = epc_stream_workload(n_readings=3000, seed=93)

    def run():
        scenario = build_epc_aggregation(workload)
        scenario.feed()
        rows = scenario.rows()
        return rows[-1]["count_tid"] if rows else 0

    final = benchmark(run)
    assert final == workload.truth["paper_count"]
