#!/usr/bin/env python3
"""Quickstart: ESL-EV in five minutes.

Walks through the core workflow:

1. create an engine and declare streams,
2. run a plain SQL continuous query (filter + UDF),
3. run a temporal SEQ query with a pairing mode,
4. detect workflow violations with EXCEPTION_SEQ and Active Expiration,
5. inspect the compiled plan.

Run:  python examples/quickstart.py
"""

from repro import Engine, describe_handle


def main() -> None:
    engine = Engine()

    # -- 1. Declare streams (DDL text or the Python API — both work). ------
    engine.query("CREATE STREAM readings(reader_id str, tag_id str, read_time float)")
    engine.create_stream("shipments", "tagid str, tagtime float")
    engine.create_stream("deliveries", "tagid str, tagtime float")

    # -- 2. A plain continuous query: filter + built-in EPC helper UDF. ----
    watch = engine.query("""
        SELECT tag_id, extract_serial(tag_id) AS serial
        FROM readings
        WHERE tag_id LIKE '20.%.%' AND extract_serial(tag_id) > 5000
    """)
    for index, tag in enumerate(["20.1.5050", "20.1.100", "7.7.9000",
                                 "20.3.9000"]):
        engine.push("readings",
                    {"reader_id": "dock", "tag_id": tag,
                     "read_time": float(index)},
                    ts=float(index))
    print("High-serial company-20 tags seen:")
    for row in watch.rows():
        print(f"  {row['tag_id']}  (serial {row['serial']})")

    # -- 3. A temporal query: shipment followed by delivery, per tag. ------
    paired = engine.query("""
        SELECT S.tagid, S.tagtime AS shipped, D.tagtime AS delivered
        FROM shipments AS S, deliveries AS D
        WHERE SEQ(S, D) MODE CHRONICLE AND S.tagid = D.tagid
    """)
    engine.push("shipments", {"tagid": "20.1.5050", "tagtime": 10.0}, ts=10.0)
    engine.push("shipments", {"tagid": "20.3.9000", "tagtime": 11.0}, ts=11.0)
    engine.push("deliveries", {"tagid": "20.1.5050", "tagtime": 42.0}, ts=42.0)
    print("\nShipment -> delivery pairs:")
    for row in paired.rows():
        print(f"  {row['tagid']}: shipped {row['shipped']:g}, "
              f"delivered {row['delivered']:g}")

    # -- 4. Exception detection with a deadline (Active Expiration). -------
    engine.create_stream("step_a", "tagid str, tagtime float")
    engine.create_stream("step_b", "tagid str, tagtime float")
    alerts = engine.query("""
        SELECT A.tagid FROM step_a AS A, step_b AS B
        WHERE EXCEPTION_SEQ(A, B) OVER [60 SECONDS FOLLOWING A]
    """)
    engine.push("step_a", {"tagid": "job-1", "tagtime": 100.0}, ts=100.0)
    engine.push("step_b", {"tagid": "job-1", "tagtime": 120.0}, ts=120.0)  # ok
    engine.push("step_a", {"tagid": "job-2", "tagtime": 200.0}, ts=200.0)
    engine.advance_time(300.0)  # a heartbeat: no tuple needed for the alert
    print("\nWorkflow alerts (jobs that missed their 60s deadline):")
    for row in alerts.rows():
        print(f"  {row['tagid']}")

    # -- 5. EXPLAIN the temporal query. -------------------------------------
    print("\nCompiled plan of the pairing query:")
    print(describe_handle(paired).render())


if __name__ == "__main__":
    main()
