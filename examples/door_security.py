#!/usr/bin/env python3
"""Door security with symmetric windows (paper section 3.2, Example 8).

A door reader sees both items and people.  An item leaving with no person
within one minute *before or after* is a potential theft — a predicate that
cannot be decided when the item is read, because the saving person may
still be coming.  The PRECEDING AND FOLLOWING window defers the alert to
the decision point (item time + 1 minute) via the engine's timers.

The script runs both the theft alert and the paper's literal Example 8
query (lone persons), then shows the pending/decided mechanics on a small
hand-built timeline.

Run:  python examples/door_security.py
"""

from repro import Engine
from repro.rfid import door_workload

THEFT_QUERY = """
    SELECT item.tagid
    FROM tag_readings AS item
    WHERE item.tagtype = 'item' AND NOT EXISTS
      (SELECT * FROM tag_readings AS person
       OVER [1 MINUTES PRECEDING AND FOLLOWING item]
       WHERE person.tagtype = 'person')
"""

LONE_PERSON_QUERY = """
    SELECT person.tagid
    FROM tag_readings AS person
    WHERE person.tagtype = 'person' AND NOT EXISTS
      (SELECT * FROM tag_readings AS item
       OVER [1 MINUTES PRECEDING AND FOLLOWING person]
       WHERE item.tagtype = 'item')
"""


def run_workload() -> None:
    workload = door_workload(n_events=30, theft_rate=0.25, seed=8)
    engine = Engine()
    engine.create_stream("tag_readings", "tagid str, tagtype str, tagtime float")
    thefts = engine.query(THEFT_QUERY, name="theft")
    lonely = engine.query(LONE_PERSON_QUERY, name="lone-person")
    engine.run_trace(workload.trace)
    engine.advance_time(workload.truth["horizon"])  # close the last windows

    detected = sorted(row["tagid"] for row in thefts.rows())
    expected = sorted(workload.truth["thefts"])
    print(f"Theft alerts: {len(detected)} "
          f"(ground truth {len(expected)}; exact match: "
          f"{detected == expected})")
    for tag in detected:
        print(f"  ALERT: {tag} left without an escort")

    print(f"\nLone persons (the paper's literal Example 8 output): "
          f"{len(lonely.rows())} — exact match: "
          f"{sorted(r['tagid'] for r in lonely.rows()) == sorted(workload.truth['lone_persons'])}")


def walk_through_timeline() -> None:
    print("\n--- mechanics on a hand-built timeline ---")
    engine = Engine()
    engine.create_stream("tag_readings", "tagid str, tagtype str, tagtime float")
    thefts = engine.query(THEFT_QUERY)

    def push(tagid: str, tagtype: str, ts: float) -> None:
        engine.push("tag_readings",
                    {"tagid": tagid, "tagtype": tagtype, "tagtime": ts}, ts=ts)
        print(f"t={ts:6.1f}  {tagtype:<6} {tagid:<8} -> "
              f"{len(thefts.rows())} alerts so far")

    push("cart-1", "item", 100.0)      # pending: maybe a person follows
    push("alice", "person", 140.0)     # saves cart-1 (40s < 60s)
    push("cart-2", "item", 400.0)      # pending
    print("t= 470.0  heartbeat (no reading)...")
    engine.advance_time(470.0)         # cart-2's decision point passed
    print(f"          -> {len(thefts.rows())} alerts: "
          f"{[r['tagid'] for r in thefts.rows()]}")


def main() -> None:
    run_workload()
    walk_through_timeline()


if __name__ == "__main__":
    main()
