#!/usr/bin/env python3
"""Clinic laboratory workflow enforcement (paper Example 5).

A staff member must perform operations A, B, C in order within one hour.
This script simulates runs with injected violations — wrong order, wrong
start, and timeouts — and shows EXCEPTION_SEQ catching every one, with the
timeout detected by *Active Expiration* (a timer, not a tuple).

It also runs the equivalent CLEVEL_SEQ query to show the two formulations
agree, and prints the per-violation breakdown against the simulator's
ground truth.

Run:  python examples/lab_workflow.py
"""

from repro import Engine
from repro.rfid import lab_workflow_workload

EXCEPTION_QUERY = """
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]
"""

CLEVEL_QUERY = """
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE (CLEVEL_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]) < 3
"""


def build(query: str) -> tuple[Engine, object]:
    engine = Engine()
    for name in ("a1", "a2", "a3"):
        engine.create_stream(name, "tagid str, tagtime float")
    return engine, engine.query(query, name="lab")


def main() -> None:
    workload = lab_workflow_workload(n_runs=24, violation_rate=0.45, seed=3)
    counts = workload.truth["counts"]
    print("Injected runs:",
          ", ".join(f"{kind}={count}" for kind, count in counts.items()))

    engine, handle = build(EXCEPTION_QUERY)
    engine.run_trace(workload.trace)
    engine.flush()  # fire remaining deadline timers (end of shift)

    operator = handle.operator
    print(f"\nEXCEPTION_SEQ raised {len(handle.rows())} alerts "
          f"(ground truth: {workload.truth['violations']} violations).")
    print("Breakdown by detected reason:")
    reasons: dict[str, int] = {}
    for outcome in operator.outcomes:
        if outcome.is_exception:
            reasons[outcome.reason.value] = reasons.get(outcome.reason.value, 0) + 1
    for reason, count in sorted(reasons.items()):
        print(f"  {reason:<16} {count}")

    print("\nAlert rows (NULL = the stage never happened):")
    for row in handle.rows()[:6]:
        print(f"  A1={row['tagid']!r:10} A2={row['tagid_2']!r:10} "
              f"A3={row['tagid_3']!r}")
    if len(handle.rows()) > 6:
        print(f"  ... and {len(handle.rows()) - 6} more")

    # The CLEVEL formulation is equivalent (paper section 3.1.3).
    engine2, handle2 = build(CLEVEL_QUERY)
    engine2.run_trace(workload.trace)
    engine2.flush()
    print(f"\nCLEVEL_SEQ(...) < 3 raised {len(handle2.rows())} alerts "
          f"(equivalent by construction: "
          f"{len(handle2.rows()) == len(handle.rows())}).")


if __name__ == "__main__":
    main()
