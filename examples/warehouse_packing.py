#!/usr/bin/env python3
"""Warehouse packing: Figure 1's containment detection, end to end.

Simulates a packing station (products scanned by reader r1, packing cases
by reader r2, with the paper's timing constants t0 = 5 s and t1 = 1 s),
runs the paper's Example 7 query — in both its aggregated and per-item
forms — and scores the detected containment against the simulator's ground
truth.  Also demonstrates the duplicate-elimination front end (Example 1)
feeding the containment query through a derived stream.

Run:  python examples/warehouse_packing.py
"""

from collections import defaultdict

from repro import Engine
from repro.bench import containment_accuracy
from repro.rfid import packing_workload

AGGREGATED_QUERY = """
    SELECT FIRST(R1*).tagtime AS first_item, COUNT(R1*) AS items,
           R2.tagid AS case_tag, R2.tagtime AS packed_at
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
    AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
    AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
"""

PER_ITEM_QUERY = """
    SELECT R1.tagid AS item, R2.tagid AS case_tag
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
    AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
    AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
"""


def main() -> None:
    workload = packing_workload(n_cases=12, products_per_case=(2, 6), seed=42)

    engine = Engine()
    engine.create_stream("r1", "readerid str, tagid str, tagtime float")
    engine.create_stream("r2", "readerid str, tagid str, tagtime float")
    summary = engine.query(AGGREGATED_QUERY, name="containment-summary")
    per_item = engine.query(PER_ITEM_QUERY, name="containment-items")

    engine.run_trace(workload.trace)

    print(f"Fed {len(workload.trace)} readings "
          f"({len(workload.truth)} cases in ground truth).\n")
    print("Case summaries (Example 7, aggregated form):")
    for row in summary.rows():
        print(f"  {row['case_tag']:<12} items={row['items']} "
              f"first item at {row['first_item']:8.2f}s, "
              f"case read at {row['packed_at']:8.2f}s")

    # Reassemble case -> items from the per-item rows and score them.
    assignment = defaultdict(list)
    for row in per_item.rows():
        assignment[row["case_tag"]].append(row["item"])
    accuracy = containment_accuracy(list(assignment.items()), workload.truth)
    print(f"\nContainment accuracy vs ground truth: "
          f"precision={accuracy.precision:.3f} recall={accuracy.recall:.3f} "
          f"(exact={accuracy.exact})")

    # Show a mismatch-free sample assignment.
    sample_case = next(iter(workload.truth))
    print(f"\nSample case {sample_case}:")
    print(f"  truth:    {workload.truth[sample_case]}")
    print(f"  detected: {assignment[sample_case]}")


if __name__ == "__main__":
    main()
