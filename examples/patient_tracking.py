#!/usr/bin/env python3
"""Patient tracking: ad-hoc snapshots, context retrieval, DB updates.

Covers the three "plain SQL" RFID tasks of paper section 2.1 that the
other examples don't:

* **ad-hoc snapshot queries** — "where is patient X right now?" answered
  from live stream state (SnapshotView), with no persistent storage;
* **context retrieval** — readings enriched from a metadata table through
  a stream–table join (authorization lookup);
* **database update** — Example 2's movement history, persisted only when
  the location changes.

Run:  python examples/patient_tracking.py
"""

from repro import Engine, SnapshotView

MOVEMENT_QUERY = """
    INSERT INTO movement_history
    SELECT tid, loc, tagtime
    FROM badge_readings WHERE NOT EXISTS
      (SELECT tagid FROM movement_history
       WHERE tagid = tid AND location = loc)
"""

AUTH_QUERY = """
    SELECT r.tid, r.loc, s.name, s.ward
    FROM badge_readings AS r, staff AS s
    WHERE r.tid = s.tagid AND s.ward <> r.loc
"""


def main() -> None:
    engine = Engine()
    engine.create_stream(
        "badge_readings", "readerid str, tid str, tagtime float, loc str"
    )
    engine.create_table("movement_history", "tagid str, location str, since float")
    engine.create_table("staff", "tagid str, name str, ward str")
    engine.query("""
        INSERT INTO staff VALUES
            ('b-1', 'Dr. Adams', 'icu'),
            ('b-2', 'Nurse Brown', 'er')
    """)

    # Live snapshot over the badge stream (10-minute retention).
    snapshot = SnapshotView(engine.stream("badge_readings"), window=600.0)

    # Example 2: persist location *changes* only.
    engine.query(MOVEMENT_QUERY, name="movement")

    # Context retrieval: alert when staff are outside their home ward.
    away = engine.query(AUTH_QUERY, name="away-from-ward")

    timeline = [
        ("b-1", "icu", 10.0), ("b-1", "icu", 70.0),   # repeat: no new row
        ("b-2", "er", 80.0),
        ("b-1", "pharmacy", 200.0),                      # moved
        ("b-2", "icu", 260.0),                            # moved
        ("b-1", "icu", 400.0),                            # back home
    ]
    for tid, loc, ts in timeline:
        engine.push(
            "badge_readings",
            {"readerid": f"rd-{loc}", "tid": tid, "tagtime": ts, "loc": loc},
            ts=ts,
        )

    # -- Ad-hoc snapshot: "where is everyone right now?" --------------------
    print("Current locations (from live stream state, no DB):")
    for tid, tup in sorted(snapshot.latest_by("tid").items()):
        print(f"  {tid}: {tup['loc']} (as of t={tup.ts:g})")

    # -- Persisted movement history (only transitions). ---------------------
    print("\nmovement_history table (Example 2 semantics):")
    for row in engine.table("movement_history").scan():
        print(f"  {row['tagid']} -> {row['location']:<9} since t={row['since']:g}")

    # -- Context-enriched alerts. -------------------------------------------
    print("\nStaff seen outside their home ward:")
    for row in away.rows():
        print(f"  {row['name']} ({row['tid']}) seen in {row['loc']}, "
              f"home ward {row['ward']}")

    # -- Windowed ad-hoc aggregate. ------------------------------------------
    recent_count = snapshot.aggregate("count_distinct", "tid")
    print(f"\nDistinct badges seen in the last 10 minutes: {recent_count}")

    # -- The same questions, in SQL (Engine.snapshot). ------------------------
    engine.enable_history("badge_readings", duration=600.0)
    # (history starts recording now; replay the tail of the shift)
    for tid, loc, ts in [("b-1", "icu", 500.0), ("b-2", "icu", 520.0)]:
        engine.push(
            "badge_readings",
            {"readerid": f"rd-{loc}", "tid": tid, "tagtime": ts, "loc": loc},
            ts=ts,
        )
    rows = engine.snapshot(
        "SELECT loc, count(tid) AS badges FROM badge_readings GROUP BY loc"
    )
    print("\nAd-hoc SQL snapshot (badges per location, last 10 min):")
    for row in rows:
        print(f"  {row['loc']}: {row['badges']}")


if __name__ == "__main__":
    main()
