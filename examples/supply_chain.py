#!/usr/bin/env python3
"""A composed supply-chain pipeline — the paper's motivating deployment.

One engine runs four of the paper's constructs as a *pipeline*, chained
through derived streams (the composition argument of section 1: a single
DSMS covers cleaning, event detection, and persistence):

    raw product reads --(Example 1 dedup)--> clean product reads
    clean reads + case reads --(Example 7 SEQ(R1*, R2))--> packed_cases
    packed_cases --(Example 2 pattern)--> persistent shipment table
    packed_cases --(aggregation)--> running totals per destination

Run:  python examples/supply_chain.py
"""

import random

from repro import Engine

DEDUP = """
    INSERT INTO products
    SELECT * FROM raw_products AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE(raw_products OVER
         (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
       WHERE r2.readerid = r1.readerid AND r2.tagid = r1.tagid)
"""

PACKING = """
    INSERT INTO packed_cases
    SELECT R2.tagid, COUNT(R1*), FIRST(R1*).tagtime, R2.tagtime
    FROM products AS R1, cases AS R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
    AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
    AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
"""

# Note the qualified correlation (s.casetag = p.casetag): a bare `casetag`
# inside the sub-query would resolve to shipments itself (innermost scope).
PERSIST = """
    INSERT INTO shipments
    SELECT p.casetag, p.items, p.packed_at
    FROM packed_cases AS p WHERE NOT EXISTS
      (SELECT casetag FROM shipments AS s WHERE s.casetag = p.casetag)
"""

TOTALS = """
    SELECT count(casetag) AS cases, sum(items) AS items_total
    FROM packed_cases
"""


def main() -> None:
    engine = Engine()
    engine.query("""
        CREATE STREAM raw_products(readerid str, tagid str, tagtime float);
        CREATE STREAM products(readerid str, tagid str, tagtime float);
        CREATE STREAM cases(readerid str, tagid str, tagtime float);
        CREATE STREAM packed_cases(casetag str, items int,
                                   first_item float, packed_at float);
        CREATE TABLE shipments(casetag str, items int, packed_at float);
    """)
    engine.query(DEDUP, name="dedup")
    engine.query(PACKING, name="packing")
    engine.query(PERSIST, name="persist")
    totals = engine.query(TOTALS, name="totals")

    # Simulate three cases being packed, with duplicate product reads.
    rng = random.Random(2)
    t = 0.0
    expected = []
    for case_index in range(3):
        n_items = rng.randint(2, 4)
        expected.append(n_items)
        for item in range(n_items):
            tag = f"20.44.{case_index * 100 + item}"
            # Each product read 3 times within 0.4s (duplicates).
            for repeat in range(3):
                ts = t + repeat * 0.2
                engine.push("raw_products",
                            {"readerid": "belt", "tagid": tag, "tagtime": ts},
                            ts=ts)
            t += 0.7  # next product within the 1s intra-case gap
        case_ts = t + 2.0
        engine.push("cases",
                    {"readerid": "pack", "tagid": f"case-{case_index}",
                     "tagtime": case_ts},
                    ts=case_ts)
        t = case_ts + 3.0  # > 1s: the next case's products form a new run

    print("Shipments table (persisted once per case):")
    for row in engine.table("shipments").scan():
        print(f"  {row['casetag']}: {row['items']} items, "
              f"packed at t={row['packed_at']:g}")

    detected = [row["items"] for row in engine.table("shipments").scan()]
    print(f"\nItems per case — expected {expected}, detected {detected}, "
          f"match: {detected == expected}")

    final = totals.rows()[-1]
    print(f"\nRunning totals: {final['cases']} cases, "
          f"{final['items_total']} items")

    dedup_in = engine.stream("raw_products").count
    dedup_out = engine.stream("products").count
    print(f"Dedup stage: {dedup_in} raw reads -> {dedup_out} clean reads "
          f"({dedup_in / dedup_out:.1f}x compression)")


if __name__ == "__main__":
    main()
