#!/usr/bin/env python3
"""EPC pattern aggregation and ALE-style reporting (paper Examples 3 + ALE).

Shows three layers over the same reading stream:

1. the paper's Example 3 query verbatim (LIKE + extract_serial UDF),
2. the structured :class:`EpcPattern` API with automatic SQL translation,
3. an ALE event cycle: fixed windows with include/exclude patterns and
   per-group counting — the middleware interface the paper cites.

Also demonstrates a user-defined aggregate written in ESL text
(CREATE AGGREGATE) used over the same stream.

Run:  python examples/epc_aggregation.py
"""

from repro import Engine, EpcPattern, pattern_to_sql
from repro.rfid import epc_stream_workload
from repro.rfid.ale import EventCycle

PAPER_QUERY = """
    SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
    AND extract_serial(tid) > 5000
    AND extract_serial(tid) < 9999
"""


def main() -> None:
    workload = epc_stream_workload(n_readings=600, seed=21)

    engine = Engine()
    engine.create_stream("readings", "reader_id str, tid str, read_time float")

    # 1. Paper Example 3, verbatim.
    paper = engine.query(PAPER_QUERY, name="paper-count")

    # 2. Pattern API -> SQL translation.
    pattern = EpcPattern("20.*.[5000-9999]")
    translated_sql = (
        f"SELECT count(tid) FROM readings WHERE {pattern_to_sql(pattern)}"
    )
    translated = engine.query(translated_sql, name="pattern-count")

    # 3. An ALE event cycle: 2-second collection windows, grouped counts.
    cycle = EventCycle(
        engine,
        streams=["readings"],
        tag_field="tid",
        duration=2.0,
        include=["20.*.*"],
        group_by={
            "serial<5000": "20.*.[0-4999]",
            "serial>=5000": "20.*.[5000-99999]",
        },
    )

    # 4. A UDA defined in ESL text: the spread of serial numbers seen.
    engine.query("""
        CREATE AGGREGATE serial_spread(s) (
            INITIALIZE: lo := s, hi := s;
            ITERATE: lo := CASE WHEN s < lo THEN s ELSE lo END,
                     hi := CASE WHEN s > hi THEN s ELSE hi END;
            TERMINATE: RETURN hi - lo;
        )
    """)
    spread = engine.query(
        "SELECT serial_spread(extract_serial(tid)) FROM readings "
        "WHERE tid LIKE '20.%.%'",
        name="spread",
    )

    engine.run_trace(workload.trace)
    engine.flush()

    paper_count = paper.rows()[-1]["count_tid"] if paper.rows() else 0
    print(f"Example 3 count (20.*, 5000 < serial < 9999): {paper_count}")
    print(f"  ground truth:                               "
          f"{workload.truth['paper_count']}")

    pattern_count = (
        translated.rows()[-1]["count_tid"] if translated.rows() else 0
    )
    print(f"\nEpcPattern '{pattern.text}' via pattern_to_sql(): "
          f"{pattern_count} (inclusive-range truth: "
          f"{workload.truth['pattern_count']})")

    print(f"\nALE event cycles ({len(cycle.reports)} x 2s):")
    for report in cycle.reports[:5]:
        groups = ", ".join(
            f"{name}={count}" for name, count in report.group_counts.items()
        )
        print(f"  cycle {report.cycle_index}: {report.count} distinct tags "
              f"(+{len(report.additions)}/-{len(report.deletions)})  {groups}")
    if len(cycle.reports) > 5:
        print(f"  ... and {len(cycle.reports) - 5} more cycles")

    final_spread = spread.rows()[-1] if spread.rows() else {}
    print(f"\nUDA serial_spread over company-20 tags: "
          f"{list(final_spread.values())[0]}")


if __name__ == "__main__":
    main()
