"""Unit tests for star-sequence operators (paper section 3.1.2)."""

import pytest

from repro.core.operators import (
    OperatorWindow,
    PairingMode,
    SeqArg,
    StarSeqOperator,
    make_sequence_operator,
)
from repro.dsms import Engine
from repro.dsms.errors import EslSemanticError


def build(engine, args, mode=PairingMode.CHRONICLE, **kw):
    for arg in args:
        if arg.stream not in engine.streams:
            engine.create_stream(arg.stream, "tagid str, tagtime float")
    return make_sequence_operator(engine, args, mode=mode, **kw)


def feed(engine, trace):
    for stream, ts in trace:
        engine.push(stream, {"tagid": f"{stream}@{ts:g}", "tagtime": ts}, ts=ts)


class TestConstruction:
    def test_needs_a_star(self):
        engine = Engine()
        engine.create_stream("a", "x")
        engine.create_stream("b", "x")
        with pytest.raises(EslSemanticError):
            StarSeqOperator(engine, [SeqArg("a"), SeqArg("b")])

    def test_factory_dispatch(self):
        engine = Engine()
        engine.create_stream("a", "x")
        engine.create_stream("b", "x")
        op = make_sequence_operator(
            engine, [SeqArg("a", starred=True), SeqArg("b")]
        )
        assert isinstance(op, StarSeqOperator)

    def test_star_followed_by_same_stream_rejected(self):
        engine = Engine()
        engine.create_stream("a", "x")
        with pytest.raises(EslSemanticError):
            StarSeqOperator(
                engine,
                [SeqArg("a", alias="x", starred=True), SeqArg("a", alias="y")],
            )

    def test_gap_on_plain_arg_rejected(self):
        with pytest.raises(EslSemanticError):
            SeqArg("a", max_gap=1.0)


class TestLongestMatch:
    def test_only_longest_run_emits(self):
        engine = Engine()
        op = build(engine, [SeqArg("e1", starred=True), SeqArg("e2")])
        feed(engine, [("e1", 1.0), ("e1", 2.0), ("e1", 3.0), ("e2", 4.0)])
        assert len(op.matches) == 1
        assert op.matches[0].count("e1") == 3

    def test_first_last_count(self):
        engine = Engine()
        op = build(engine, [SeqArg("e1", starred=True), SeqArg("e2")])
        feed(engine, [("e1", 1.0), ("e1", 2.0), ("e2", 3.0)])
        match = op.matches[0]
        assert match.first("e1").ts == 1.0
        assert match.last("e1").ts == 2.0
        assert match.count("e1") == 2
        assert match.tuple_for("e2").ts == 3.0

    def test_star_requires_at_least_one_tuple(self):
        engine = Engine()
        op = build(engine, [SeqArg("e1", starred=True), SeqArg("e2")])
        feed(engine, [("e2", 1.0)])  # no e1 run yet
        assert op.matches == []


class TestTrailingStarOnline:
    def test_event_per_trailing_arrival(self):
        """SEQ(E1*, E2*): one event per E2 arrival (paper 3.1.2)."""
        engine = Engine()
        op = build(
            engine,
            [SeqArg("e1", starred=True), SeqArg("e2", starred=True)],
        )
        feed(engine, [("e1", 1.0), ("e1", 2.0),
                      ("e2", 3.0), ("e2", 4.0), ("e2", 5.0)])
        assert len(op.matches) == 3
        assert [m.count("e2") for m in op.matches] == [1, 2, 3]
        assert all(m.count("e1") == 2 for m in op.matches)


class TestGapSegmentation:
    def test_max_gap_splits_runs(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("e1", starred=True, max_gap=1.0), SeqArg("e2")],
        )
        # Two runs: [1.0, 1.5] then [4.0]; e2 at 4.5 matches the earliest.
        feed(engine, [("e1", 1.0), ("e1", 1.5), ("e1", 4.0), ("e2", 4.5)])
        assert len(op.matches) == 1
        assert op.matches[0].count("e1") == 2
        assert op.matches[0].first("e1").ts == 1.0

    def test_gap_check_predicate(self):
        engine = Engine()
        # Custom predicate: consecutive tuples must have ascending tagtime
        # within 2 units.
        op = build(
            engine,
            [
                SeqArg(
                    "e1", starred=True,
                    gap_check=lambda prev, cur: cur.ts - prev.ts <= 2.0,
                ),
                SeqArg("e2"),
            ],
        )
        feed(engine, [("e1", 0.0), ("e1", 1.5), ("e1", 10.0), ("e2", 11.0)])
        assert op.matches[0].count("e1") == 2

    def test_second_run_matches_second_case(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("e1", starred=True, max_gap=1.0), SeqArg("e2")],
        )
        feed(engine, [
            ("e1", 1.0), ("e1", 1.5),   # run 1
            ("e1", 4.0),                  # run 2
            ("e2", 4.5),                  # matches run 1 (chronicle)
            ("e2", 5.0),                  # matches run 2
        ])
        assert [m.count("e1") for m in op.matches] == [2, 1]


class TestFigure1Overlap:
    """Figure 1(b): the next case's products start before the previous case
    tag is read."""

    def test_overlapping_cases_resolve_correctly(self):
        engine = Engine()

        def guard(bindings):
            run = bindings.get("e1")
            case = bindings.get("e2")
            if isinstance(run, list) and run and case is not None and not (
                isinstance(case, list)
            ):
                return case.ts - run[-1].ts <= 5.0
            return True

        op = build(
            engine,
            [SeqArg("e1", starred=True, max_gap=1.0), SeqArg("e2")],
            guard=guard,
        )
        feed(engine, [
            ("e1", 0.0), ("e1", 0.5),     # case 1 products
            ("e1", 2.0), ("e1", 2.5),     # case 2 products (gap 1.5 > 1)
            ("e2", 3.0),                   # case 1 tag (within 5s of 0.5)
            ("e2", 6.0),                   # case 2 tag (within 5s of 2.5)
        ])
        assert len(op.matches) == 2
        first, second = op.matches
        assert [t.ts for t in first.run_for("e1")] == [0.0, 0.5]
        assert first.tuple_for("e2").ts == 3.0
        assert [t.ts for t in second.run_for("e1")] == [2.0, 2.5]


class TestModes:
    def test_chronicle_consumes_runs(self):
        engine = Engine()
        op = build(engine, [SeqArg("e1", starred=True, max_gap=1.0),
                            SeqArg("e2")], mode=PairingMode.CHRONICLE)
        feed(engine, [("e1", 1.0), ("e2", 2.0), ("e2", 3.0)])
        # Second e2 finds no run left.
        assert len(op.matches) == 1

    def test_recent_matches_latest_run(self):
        engine = Engine()
        op = build(engine, [SeqArg("e1", starred=True, max_gap=1.0),
                            SeqArg("e2")], mode=PairingMode.RECENT)
        feed(engine, [
            ("e1", 1.0),            # run 1
            ("e1", 5.0),            # run 2 (gap > 1)
            ("e2", 6.0),
        ])
        assert len(op.matches) == 1
        assert op.matches[0].first("e1").ts == 5.0

    def test_consecutive_interloper_resets(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("e1", starred=True), SeqArg("e2"), SeqArg("e3")],
            mode=PairingMode.CONSECUTIVE,
        )
        feed(engine, [("e1", 1.0), ("e3", 2.0),        # e3 interrupts
                      ("e1", 3.0), ("e2", 4.0), ("e3", 5.0)])
        assert len(op.matches) == 1
        assert op.matches[0].first("e1").ts == 3.0

    def test_unrestricted_combines_runs_with_all_anchors(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("e1", starred=True, max_gap=1.0), SeqArg("e2")],
            mode=PairingMode.UNRESTRICTED,
        )
        feed(engine, [("e1", 1.0), ("e2", 2.0), ("e2", 3.0)])
        # Both e2 tuples pair with the (single, longest) run.
        assert len(op.matches) == 2


class TestThreeStagePatterns:
    def test_star_middle(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("a"), SeqArg("b", starred=True), SeqArg("c")],
        )
        feed(engine, [("a", 1.0), ("b", 2.0), ("b", 3.0), ("c", 4.0)])
        match = op.matches[0]
        assert match.tuple_for("a").ts == 1.0
        assert match.count("b") == 2
        assert match.tuple_for("c").ts == 4.0

    def test_paper_pattern_a_star_b_c_star_d(self):
        """SEQ(A*, B, C*, D) from section 3.1.2."""
        engine = Engine()
        op = build(
            engine,
            [
                SeqArg("a", starred=True),
                SeqArg("b"),
                SeqArg("c", starred=True),
                SeqArg("d"),
            ],
        )
        feed(engine, [
            ("a", 1.0), ("a", 2.0), ("b", 3.0),
            ("c", 4.0), ("c", 5.0), ("c", 6.0), ("d", 7.0),
        ])
        match = op.matches[0]
        assert match.count("a") == 2
        assert match.count("c") == 3
        assert match.tuple_for("b").ts == 3.0


class TestWindowsAndState:
    def test_preceding_window_rejects(self):
        engine = Engine()
        window = OperatorWindow(3.0, 1, "preceding")
        op = build(
            engine,
            [SeqArg("e1", starred=True), SeqArg("e2")],
            window=window,
        )
        feed(engine, [("e1", 0.0), ("e1", 1.0), ("e2", 10.0)])
        assert op.matches == []

    def test_preceding_window_admits(self):
        engine = Engine()
        window = OperatorWindow(5.0, 1, "preceding")
        op = build(
            engine,
            [SeqArg("e1", starred=True), SeqArg("e2")],
            window=window,
        )
        feed(engine, [("e1", 0.0), ("e1", 1.0), ("e2", 4.0)])
        assert len(op.matches) == 1

    def test_ttl_prunes_stale_partials(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("e1", starred=True, max_gap=1.0), SeqArg("e2")],
            ttl=10.0,
        )
        feed(engine, [("e1", 0.0)])
        feed(engine, [("e1", 100.0)])  # first partial is now stale
        assert op.state_size == 1

    def test_state_size_counts_bound_tuples(self):
        engine = Engine()
        op = build(engine, [SeqArg("e1", starred=True), SeqArg("e2")])
        feed(engine, [("e1", 0.0), ("e1", 0.5)])
        assert op.state_size == 2

    def test_partitioned_runs(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("e1", starred=True), SeqArg("e2")],
            partition_by=lambda t: t["tagid"],
        )
        # Different tag ids live in different partitions: runs never mix.
        for stream, tag, ts in [
            ("e1", "k1", 1.0), ("e1", "k2", 2.0),
            ("e2", "k1", 3.0), ("e2", "k2", 4.0),
        ]:
            engine.push(stream, {"tagid": tag, "tagtime": ts}, ts=ts)
        assert len(op.matches) == 2
        assert all(m.count("e1") == 1 for m in op.matches)


class TestUnrestrictedBranching:
    """Clone-on-bind semantics: every qualifying partial advances."""

    def test_two_anchors_two_runs_all_pairs(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("e1", starred=True, max_gap=1.0), SeqArg("e2")],
            mode=PairingMode.UNRESTRICTED,
        )
        feed(engine, [
            ("e1", 1.0),              # run 1
            ("e1", 5.0),              # run 2
            ("e2", 6.0), ("e2", 7.0),
        ])
        # Each anchor pairs with each preceding run: 2 runs x 2 anchors.
        assert len(op.matches) == 4
        starts = sorted(
            (m.first("e1").ts, m.tuple_for("e2").ts) for m in op.matches
        )
        assert starts == [(1.0, 6.0), (1.0, 7.0), (5.0, 6.0), (5.0, 7.0)]

    def test_three_stage_branching(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("a", starred=True), SeqArg("b"), SeqArg("c")],
            mode=PairingMode.UNRESTRICTED,
        )
        feed(engine, [("a", 1.0), ("b", 2.0), ("b", 3.0), ("c", 4.0)])
        # The run [a@1] pairs with each b, then each with c: 2 matches.
        assert len(op.matches) == 2
        assert sorted(m.tuple_for("b").ts for m in op.matches) == [2.0, 3.0]

    def test_store_matches_disabled(self):
        engine = Engine()
        op = build(
            engine,
            [SeqArg("e1", starred=True), SeqArg("e2")],
            mode=PairingMode.CHRONICLE,
            store_matches=False,
        )
        feed(engine, [("e1", 1.0), ("e2", 2.0)])
        assert op.matches == []
        assert op.matches_emitted == 1


class TestOperatorBookkeeping:
    def test_tuples_seen_counts_participating_only(self):
        engine = Engine()
        engine.create_stream("other", "tagid str, tagtime float")
        op = build(engine, [SeqArg("e1", starred=True), SeqArg("e2")])
        feed(engine, [("e1", 1.0), ("e2", 2.0)])
        engine.push("other", {"tagid": "x", "tagtime": 3.0}, ts=3.0)
        assert op.tuples_seen == 2  # `other` is not subscribed

    def test_stop_detaches(self):
        engine = Engine()
        op = build(engine, [SeqArg("e1", starred=True), SeqArg("e2")])
        op.stop()
        feed(engine, [("e1", 1.0), ("e2", 2.0)])
        assert op.matches == []

    def test_drain_matches(self):
        engine = Engine()
        op = build(engine, [SeqArg("e1", starred=True), SeqArg("e2")])
        feed(engine, [("e1", 1.0), ("e2", 2.0)])
        drained = op.drain_matches()
        assert len(drained) == 1
        assert op.matches == []

    def test_repr_mentions_pattern(self):
        engine = Engine()
        op = build(engine, [SeqArg("e1", starred=True), SeqArg("e2")])
        assert "e1*" in repr(op)
