"""Unit tests for in-memory tables."""

import pytest

from repro.dsms.errors import SchemaError, UnknownTableError
from repro.dsms.schema import Schema
from repro.dsms.table import Table, TableRegistry
from repro.dsms.tuples import Tuple


def movement_table():
    table = Table("object_movement", "tagid str, location str, start_time float")
    table.insert(["t1", "dock", 1.0])
    table.insert(["t1", "aisle", 2.0])
    table.insert(["t2", "dock", 3.0])
    return table


class TestInserts:
    def test_insert_and_len(self):
        table = movement_table()
        assert len(table) == 3

    def test_insert_validates_schema(self):
        table = Table("t", "a int")
        with pytest.raises(SchemaError):
            table.insert(["not an int"])

    def test_insert_dict_fills_nulls(self):
        table = Table("t", "a int, b str")
        table.insert_dict({"b": "x"})
        assert list(table.rows()) == [(None, "x")]

    def test_insert_dict_rejects_unknown(self):
        table = Table("t", "a int")
        with pytest.raises(SchemaError):
            table.insert_dict({"zz": 1})

    def test_insert_tuple_aligns_by_name(self):
        table = Table("t", "tagid str, location str")
        schema = Schema.parse("location str, tagid str, extra int")
        table.insert_tuple(Tuple(schema, ["dock", "t9", 1], 0.0))
        assert list(table.scan()) == [{"tagid": "t9", "location": "dock"}]


class TestQueries:
    def test_scan(self):
        rows = list(movement_table().scan())
        assert rows[0] == {"tagid": "t1", "location": "dock", "start_time": 1.0}

    def test_lookup_without_index(self):
        table = movement_table()
        rows = list(table.lookup(tagid="t1"))
        assert len(rows) == 2

    def test_lookup_with_index(self):
        table = movement_table()
        table.create_index("tagid", "location")
        rows = list(table.lookup(location="dock", tagid="t1"))
        assert rows == [{"tagid": "t1", "location": "dock", "start_time": 1.0}]

    def test_index_maintained_on_insert(self):
        table = movement_table()
        table.create_index("tagid")
        table.insert(["t3", "gate", 9.0])
        assert list(table.lookup(tagid="t3"))[0]["location"] == "gate"

    def test_index_on_unknown_column(self):
        with pytest.raises(SchemaError):
            movement_table().create_index("bogus")

    def test_exists(self):
        table = movement_table()
        assert table.exists(tagid="t1", location="dock")
        assert not table.exists(tagid="t1", location="gate")

    def test_as_tuples(self):
        tuples = list(movement_table().as_tuples(ts=5.0))
        assert len(tuples) == 3
        assert tuples[0]["tagid"] == "t1"
        assert tuples[0].ts == 5.0


class TestMutations:
    def test_delete_where(self):
        table = movement_table()
        removed = table.delete_where(lambda row: row[0] == "t1")
        assert removed == 2
        assert len(table) == 1

    def test_delete_rebuilds_index(self):
        table = movement_table()
        table.create_index("tagid")
        table.delete_where(lambda row: row[0] == "t1")
        assert list(table.lookup(tagid="t1")) == []
        assert len(list(table.lookup(tagid="t2"))) == 1

    def test_update_where(self):
        table = movement_table()
        changed = table.update_where(
            lambda row: row[1] == "dock", {"location": "dock2"}
        )
        assert changed == 2
        assert table.exists(location="dock2")

    def test_clear(self):
        table = movement_table()
        table.create_index("tagid")
        table.clear()
        assert len(table) == 0
        assert list(table.lookup(tagid="t1")) == []


class TestRegistry:
    def test_create_get_case_insensitive(self):
        registry = TableRegistry()
        registry.create("Movement", "a int")
        assert registry.get("movement").name == "Movement"

    def test_duplicate_rejected(self):
        registry = TableRegistry()
        registry.create("t", "a")
        with pytest.raises(SchemaError):
            registry.create("T", "a")

    def test_unknown_raises(self):
        with pytest.raises(UnknownTableError):
            TableRegistry().get("missing")

    def test_drop_and_contains(self):
        registry = TableRegistry()
        registry.create("t", "a")
        assert "t" in registry
        registry.drop("t")
        assert "t" not in registry
