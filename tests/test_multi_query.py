"""Shared multi-query execution: registry routing, dedup, lifecycle.

Every differential here compares a registered query's answer stream —
``(values, ts)`` per tuple, in order — against an independent single
:class:`~repro.dsms.Engine` running the same text over the same trace.
Shared execution (predicate-indexed routing, sub-plan dedup, fan-out
collectors) must be byte-identical to that reference; so must the naive
per-engine mode it is benchmarked against.
"""

import pytest

from repro.core.planner import describe_registry
from repro.dsms import (
    Engine,
    EslSemanticError,
    MultiQueryEngine,
    QueryRegistry,
)

pytestmark = pytest.mark.multiquery

READINGS = "reader_id str, tag_id str, read_time float"

TRACE = [
    ("r0", "tA", 0.0),
    ("r1", "tB", 1.0),
    ("r0", None, 2.0),
    ("r2", "tA", 3.0),
    ("r1", "tC", 4.0),
    ("r0", "tB", 5.0),
    (None, "tA", 6.0),
    ("r2", "tC", 7.0),
]


def _feed(target, rows=TRACE, offset=0.0):
    for reader, tag, ts in rows:
        target.push(
            "readings",
            {"reader_id": reader, "tag_id": tag, "read_time": ts + offset},
            ts + offset,
        )
    target.flush()


def _answers(sub_or_handle):
    return [(tup.values, tup.ts) for tup in sub_or_handle.results]


def _single_run(text, rows=TRACE, offset=0.0, **flags):
    engine = Engine(**flags)
    engine.create_stream("readings", READINGS)
    handle = engine.query(text)
    _feed(engine, rows, offset)
    return _answers(handle)


def _shared(**flags):
    mq = MultiQueryEngine(shared_execution=True, **flags)
    mq.create_stream("readings", READINGS)
    return mq


SHAPES = [
    # (query text, routing expectation) — each exercised shared vs naive
    # vs single-engine.  Routing expectation is asserted via stats().
    ("SELECT reader_id, tag_id FROM readings WHERE tag_id = 'tA'", "indexed"),
    ("SELECT tag_id FROM readings WHERE read_time > 3.0", "indexed"),
    (
        "SELECT reader_id FROM readings "
        "WHERE tag_id IN ('tA', 'tB') AND read_time < 6.0",
        "indexed",
    ),
    ("SELECT tag_id FROM readings WHERE reader_id = tag_id", "residual"),
    (
        "SELECT S.tag_id, E.read_time FROM readings AS S, readings AS E "
        "WHERE SEQ(S, E) OVER [10 SECONDS PRECEDING E] "
        "AND S.tag_id = E.tag_id",
        "residual",
    ),
    (
        "SELECT S.tag_id, E.read_time FROM readings AS S, readings AS E "
        "WHERE SEQ(S, E) MODE CONSECUTIVE OVER [10 SECONDS PRECEDING E] "
        "AND S.tag_id = E.tag_id",
        "residual",  # CONSECUTIVE runs break on interlopers: never gated
    ),
]


class TestSharedMatchesSingleEngine:
    @pytest.mark.parametrize("text,routing", SHAPES)
    def test_shared_byte_identical(self, text, routing):
        mq = _shared()
        sub = mq.register(text)
        _feed(mq)
        assert _answers(sub) == _single_run(text)
        stats = mq.stats()
        if routing == "indexed":
            assert stats["indexed_entries"] >= 1
        else:
            assert stats["indexed_entries"] == 0
        mq.close()

    @pytest.mark.parametrize("text,routing", SHAPES)
    def test_naive_byte_identical(self, text, routing):
        mq = MultiQueryEngine(shared_execution=False)
        mq.create_stream("readings", READINGS)
        sub = mq.register(text)
        _feed(mq)
        assert _answers(sub) == _single_run(text)
        mq.close()

    def test_all_shapes_concurrently(self):
        mq = _shared()
        subs = [mq.register(text) for text, _ in SHAPES]
        _feed(mq)
        for (text, _), sub in zip(SHAPES, subs):
            assert _answers(sub) == _single_run(text), text
        mq.close()

    def test_interpreted_engine_stays_residual_and_identical(self):
        text = SHAPES[0][0]
        mq = _shared(compile_expressions=False)
        sub = mq.register(text)
        _feed(mq)
        assert _answers(sub) == _single_run(text, compile_expressions=False)
        mq.close()

    def test_null_values_route_exactly(self):
        # Strict filter: NULL tag_id fails '=' and is gated away; lenient
        # SEQ admission: NULL passes.  Both must match the single engine.
        eq = "SELECT read_time FROM readings WHERE tag_id = 'tA'"
        seq = (
            "SELECT S.read_time, E.read_time FROM readings AS S, "
            "readings AS E WHERE SEQ(S, E) OVER [10 SECONDS PRECEDING E] "
            "AND S.reader_id = 'r0' AND E.reader_id = 'r2'"
        )
        mq = _shared()
        sub_eq, sub_seq = mq.register(eq), mq.register(seq)
        _feed(mq)
        assert _answers(sub_eq) == _single_run(eq)
        assert _answers(sub_seq) == _single_run(seq)
        mq.close()


class TestRuntimeRegisterCancel:
    def test_register_mid_trace_sees_only_subsequent_matches(self):
        text = "SELECT read_time FROM readings WHERE tag_id = 'tA'"
        mq = _shared()
        early = mq.register(text)
        _feed(mq, TRACE[:4])
        late = mq.register(text)
        _feed(mq, TRACE[4:])
        assert _answers(early) == _single_run(text)
        # tA at ts 0.0 and 3.0 predate the late registration.
        assert _answers(late) == [
            row for row in _single_run(text) if row[1] > 3.0
        ]
        mq.close()

    def test_cancel_mid_trace_keeps_emitted_answers(self):
        text = "SELECT read_time FROM readings WHERE tag_id = 'tA'"
        mq = _shared()
        sub = mq.register(text)
        keeper = mq.register("SELECT read_time FROM readings WHERE tag_id = 'tB'")
        _feed(mq, TRACE[:4])
        seen = _answers(sub)
        assert seen  # tA matched twice already
        sub.cancel()
        _feed(mq, TRACE[4:])
        assert _answers(sub) == seen  # nothing dropped, nothing added
        assert _answers(keeper) == _single_run(
            "SELECT read_time FROM readings WHERE tag_id = 'tB'"
        )
        mq.close()

    def test_cancel_frees_all_per_query_state(self):
        seq = (
            "SELECT S.tag_id FROM readings AS S, readings AS E "
            "WHERE SEQ(S, E) OVER [100 SECONDS PRECEDING E] "
            "AND S.tag_id = E.tag_id"
        )
        mq = _shared()
        baseline_subs = mq.engine.streams.get("readings").subscriber_count
        assert mq.registry.state_size() == 0
        subs = [mq.register(seq) for _ in range(3)]
        subs.append(mq.register("SELECT tag_id FROM readings WHERE tag_id = 'tA'"))
        _feed(mq)
        assert mq.registry.state_size() > 0  # SEQ held tuples
        for sub in subs:
            sub.cancel()
        assert mq.registry.state_size() == 0
        assert (
            mq.engine.streams.get("readings").subscriber_count
            == baseline_subs
        )
        assert mq.stats()["shared_plans"] == 0
        assert list(mq.registry.routers()) == []
        mq.close()

    def test_answers_on_callback_sink(self):
        got = []
        mq = _shared()
        mq.register(
            "SELECT read_time FROM readings WHERE tag_id = 'tA'",
            on_answer=got.append,
        )
        _feed(mq)
        assert [(tup.values, tup.ts) for tup in got] == _single_run(
            "SELECT read_time FROM readings WHERE tag_id = 'tA'"
        )
        mq.close()


class TestSubPlanDedup:
    def test_identical_queries_share_one_plan(self):
        text = (
            "SELECT S.tag_id, E.read_time FROM readings AS S, "
            "readings AS E WHERE SEQ(S, E) OVER [10 SECONDS PRECEDING E] "
            "AND S.tag_id = E.tag_id"
        )
        n = 5
        mq = _shared()
        subs = [mq.register(text) for _ in range(n)]
        assert mq.stats()["shared_plans"] == 1
        assert mq.stats()["subscriptions"] == n
        _feed(mq)
        reference = _single_run(text)
        assert reference
        for sub in subs:
            assert _answers(sub) == reference
        mq.close()

    def test_cancel_one_twin_keeps_the_other_flowing(self):
        text = "SELECT read_time FROM readings WHERE tag_id = 'tA'"
        mq = _shared()
        a, b = mq.register(text), mq.register(text)
        _feed(mq, TRACE[:4])
        a.cancel()
        assert mq.stats()["shared_plans"] == 1  # b still owns the plan
        _feed(mq, TRACE[4:])
        assert _answers(b) == _single_run(text)
        assert len(a.results) < len(b.results)
        mq.close()

    def test_case_variant_select_aliases_do_not_dedupe(self):
        # Output schema names are case-preserving, so these are distinct.
        mq = _shared()
        lower = mq.register(
            "SELECT tag_id AS t FROM readings WHERE tag_id = 'tA'"
        )
        upper = mq.register(
            "SELECT tag_id AS T FROM readings WHERE tag_id = 'tA'"
        )
        assert mq.stats()["shared_plans"] == 2
        _feed(mq)
        assert lower.results[0].schema.names != upper.results[0].schema.names
        mq.close()

    def test_whitespace_variants_share_via_structure(self):
        mq = _shared()
        a = mq.register("SELECT tag_id FROM readings WHERE tag_id = 'tA'")
        b = mq.register(
            "SELECT  tag_id\nFROM readings\nWHERE  tag_id = 'tA'"
        )
        assert mq.stats()["shared_plans"] == 1
        mq.close()
        assert not a.active and not b.active


class TestIdempotentTeardown:
    def test_double_cancel_is_noop(self):
        mq = _shared()
        sub = mq.register("SELECT tag_id FROM readings WHERE tag_id = 'tA'")
        sub.cancel()
        sub.cancel()
        mq.cancel(sub)
        assert not sub.active
        mq.close()

    def test_close_with_live_subscribers(self):
        mq = _shared()
        subs = [
            mq.register("SELECT tag_id FROM readings WHERE tag_id = 'tA'"),
            mq.register("SELECT tag_id FROM readings WHERE read_time > 1.0"),
        ]
        mq.close()
        mq.close()
        for sub in subs:
            assert not sub.active
            sub.cancel()  # cancel after close: still a no-op
        assert mq.state_size() == 0

    def test_register_after_close_raises(self):
        mq = _shared()
        mq.close()
        with pytest.raises(EslSemanticError):
            mq.register("SELECT tag_id FROM readings WHERE tag_id = 'tA'")

    def test_naive_mode_idempotent_teardown(self):
        mq = MultiQueryEngine(shared_execution=False)
        mq.create_stream("readings", READINGS)
        sub = mq.register("SELECT tag_id FROM readings WHERE tag_id = 'tA'")
        sub.cancel()
        sub.cancel()
        mq.close()
        mq.close()

    def test_registry_context_manager(self):
        engine = Engine()
        engine.create_stream("readings", READINGS)
        with QueryRegistry(engine) as registry:
            registry.register("SELECT tag_id FROM readings WHERE tag_id = 'tA'")
        assert registry.closed
        assert engine.streams.get("readings").subscriber_count == 0


class TestValidation:
    def test_ddl_text_rejected(self):
        mq = _shared()
        with pytest.raises(EslSemanticError):
            mq.register("CREATE STREAM other (x int)")
        mq.close()

    def test_insert_into_rejected(self):
        mq = _shared()
        mq.engine.create_stream("out", "tag_id str")
        with pytest.raises(EslSemanticError):
            mq.register(
                "INSERT INTO out SELECT tag_id FROM readings "
                "WHERE tag_id = 'tA'"
            )
        mq.close()

    def test_unknown_stream_rejected_and_leaves_no_state(self):
        mq = _shared()
        with pytest.raises(Exception):
            mq.register("SELECT x FROM nowhere WHERE x = 1")
        assert mq.stats()["shared_plans"] == 0
        mq.close()

    def test_naive_mode_same_validation(self):
        mq = MultiQueryEngine(shared_execution=False)
        mq.create_stream("readings", READINGS)
        with pytest.raises(EslSemanticError):
            mq.register("CREATE STREAM other (x int)")
        mq.close()


class TestColumnarIngestion:
    def test_push_columns_matches_per_row(self):
        from repro.dsms import Schema
        from repro.dsms.columns import ColumnBatch

        schema = Schema.parse(READINGS)
        readers = [row[0] for row in TRACE]
        tags = [row[1] for row in TRACE]
        times = [row[2] for row in TRACE]
        batch = ColumnBatch(schema, [readers, tags, times], times)

        texts = [text for text, _ in SHAPES[:4]]
        columnar = _shared()
        subs_col = [columnar.register(text) for text in texts]
        columnar.push_columns("readings", batch)
        columnar.flush()

        scalar = _shared()
        subs_row = [scalar.register(text) for text in texts]
        _feed(scalar)

        for text, col, row in zip(texts, subs_col, subs_row):
            assert _answers(col) == _answers(row) == _single_run(text), text
        columnar.close()
        scalar.close()


class TestCatalogReplay:
    def test_naive_mode_replays_ddl_into_late_engines(self):
        mq = MultiQueryEngine(shared_execution=False)
        mq.create_stream("readings", READINGS)
        mq.register_udf("double_it", lambda x: x * 2)
        sub = mq.register(
            "SELECT double_it(read_time) FROM readings WHERE tag_id = 'tA'"
        )
        mq.create_stream("other", "x int")  # DDL after a registration
        sub2 = mq.register("SELECT x FROM other WHERE x > 1")
        _feed(mq)
        mq.push("other", {"x": 5}, 100.0)
        mq.flush()
        assert len(sub.results) == 3
        assert [tup.values for tup in sub2.results] == [(5,)]
        mq.close()


class TestPlannerDescription:
    def test_describe_registry_renders_routers_and_fanout(self):
        mq = _shared()
        text = "SELECT tag_id FROM readings WHERE tag_id = 'tA'"
        mq.register(text)
        mq.register(text)
        mq.register("SELECT tag_id FROM readings WHERE reader_id = tag_id")
        rendered = describe_registry(mq).render()
        assert "MultiQuery" in rendered
        assert "3 subscriptions over 2 shared plans" in rendered
        assert "StreamRouter" in rendered
        assert "PredicateIndex" in rendered
        assert "ResidualScan" in rendered
        assert "fan-out x2" in rendered
        mq.close()

    def test_describe_registry_naive_mode(self):
        mq = MultiQueryEngine(shared_execution=False)
        rendered = describe_registry(mq).render()
        assert "naive" in rendered
        mq.close()
