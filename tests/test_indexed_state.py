"""Differential tests: indexed sequence state vs. the reference path.

``Engine(indexed_state=True)`` (the default) runs SEQ with cached
predecessor cuts, bisected eviction, and the lazy partition-expiry heap;
``indexed_state=False`` keeps the original enumeration and the amortized
all-partition sweep.  The contract is *byte-identical output*: for any
workload, both paths must emit the same match sequence — same chains, same
order — across all four pairing modes, window shapes, guards, star
sequences, and timer-driven EXCEPTION_SEQ violations.

The second half covers the state-bounds regression the heap exists for:
windowed UNRESTRICTED with many one-shot tags must keep ``state_size``
bounded and drop idle partitions, on both :class:`Engine` and
:class:`ShardedEngine`, including via clock heartbeats with no arrivals.
"""

import random

import pytest

from repro.core.operators import (
    ExceptionSeqOperator,
    OperatorWindow,
    PairingMode,
    SeqArg,
    make_sequence_operator,
)
from repro.dsms import Engine, ShardedEngine
from repro.rfid import (
    build_quality_check,
    build_quality_check_sharded,
    quality_check_workload,
)

MODES = [
    PairingMode.UNRESTRICTED,
    PairingMode.RECENT,
    PairingMode.CHRONICLE,
    PairingMode.CONSECUTIVE,
]

#: Window shapes exercised by the random sweep: None, the canonical
#: PRECEDING-last shape (whose per-chain check the indexed path elides),
#: a mid-anchored PRECEDING window, and a FOLLOWING window.
WINDOW_SHAPES = ["none", "preceding_last", "preceding_mid", "following"]


def window_for(shape, n_args, duration=12.0):
    if shape == "none":
        return None
    if shape == "preceding_last":
        return OperatorWindow(duration, n_args - 1, "preceding")
    if shape == "preceding_mid":
        return OperatorWindow(duration, 1, "preceding")
    return OperatorWindow(duration, 0, "following")


def build_op(engine, streams, mode, **kw):
    for name in set(streams):
        engine.create_stream(name, "tagid str, tagtime float")
    args = [
        SeqArg(name, alias=f"{name}{i}") for i, name in enumerate(streams)
    ]
    return make_sequence_operator(engine, args, mode=mode, **kw)


def random_trace(seed, n=240, streams=("a", "b", "c"), tags=("t1", "t2", "t3")):
    rng = random.Random(seed)
    ts = 0.0
    trace = []
    for _ in range(n):
        ts += rng.choice([0.0, 0.4, 1.1, 3.0, 9.0])
        trace.append((rng.choice(streams), rng.choice(tags), ts))
    return trace


def state_invariant(op):
    """The incremental held-tuple counter must equal a from-scratch sum."""
    assert op.state_size == sum(
        p.state_size() for p in op._partitions.values()
    )


def run_one(indexed, streams, mode, trace, window, guard, partition):
    engine = Engine(indexed_state=indexed)
    op = build_op(
        engine, streams, mode, window=window, guard=guard,
        partition_by=(lambda t: t["tagid"]) if partition else None,
    )
    for stream, tag, ts in trace:
        engine.push(stream, {"tagid": tag, "tagtime": ts}, ts=ts)
    state_invariant(op)
    return op


def assert_differential(streams, mode, trace, window=None, guard=None,
                        partition=False):
    reference = run_one(False, streams, mode, trace, window, guard, partition)
    indexed = run_one(True, streams, mode, trace, window, guard, partition)
    assert [m.key() for m in indexed.matches] == [
        m.key() for m in reference.matches
    ]
    return indexed


class TestDifferentialModes:
    """Random-trace sweep over every (mode, window shape) combination."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("shape", WINDOW_SHAPES)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_partitioned(self, mode, shape, seed):
        trace = random_trace(seed)
        assert_differential(
            ["a", "b", "c"], mode, trace,
            window=window_for(shape, 3), partition=True,
        )

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("shape", WINDOW_SHAPES)
    def test_unpartitioned(self, mode, shape):
        trace = random_trace(7, n=120)
        assert_differential(
            ["a", "b", "c"], mode, trace, window=window_for(shape, 3),
        )

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("shape", ["none", "preceding_last"])
    def test_pairing_guard(self, mode, shape):
        """A plain (pairing-time) guard: RECENT keeps full history and the
        indexed path walks stored cuts under guard probes."""

        def guard(bindings):
            tags = {t["tagid"] for t in bindings.values()}
            return len(tags) == 1

        trace = random_trace(11, n=160)
        assert_differential(
            ["a", "b", "c"], mode, trace,
            window=window_for(shape, 3), guard=guard,
        )

    @pytest.mark.parametrize("mode", MODES[:3])
    def test_multi_position_stream(self, mode):
        """One stream feeding two argument positions: a tuple admitted at
        stage i must not pair with itself as the stage-i+1 anchor (the
        stored-cut trailing exclusion)."""
        trace = random_trace(13, n=140, streams=("a", "b"))
        assert_differential(
            ["a", "b", "a"], mode, trace,
            window=window_for("preceding_last", 3),
        )

    @pytest.mark.parametrize("shape", WINDOW_SHAPES)
    def test_two_stage_windowed(self, shape):
        trace = random_trace(17, n=200, streams=("a", "b"))
        assert_differential(
            ["a", "b"], PairingMode.UNRESTRICTED, trace,
            window=window_for(shape, 2), partition=True,
        )


STAR_QUERY = """
SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
FROM R1, R2
WHERE SEQ(R1*, R2) MODE CHRONICLE
AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
"""


class TestDifferentialQueries:
    def test_star_sequence_rows_identical(self):
        rng = random.Random(23)
        rows = []
        for indexed in (False, True):
            engine = Engine(indexed_state=indexed)
            engine.create_stream("r1", "readerid str, tagid str, tagtime float")
            engine.create_stream("r2", "readerid str, tagid str, tagtime float")
            handle = engine.query(STAR_QUERY, name="star")
            ts = 0.0
            rng = random.Random(23)
            for _ in range(150):
                ts += rng.choice([0.3, 0.8, 2.0, 6.0])
                stream = "r1" if rng.random() < 0.8 else "r2"
                engine.push(
                    stream, {"readerid": "r", "tagid": "t1", "tagtime": ts},
                    ts=ts,
                )
            rows.append(handle.rows())
        assert rows[0] == rows[1]

    @pytest.mark.parametrize("mode", ["UNRESTRICTED", "RECENT", "CHRONICLE"])
    def test_quality_scenario_rows_identical(self, mode):
        workload = quality_check_workload(n_products=40, seed=51)
        reference = build_quality_check(
            workload, mode=mode, window_minutes=30.0, indexed_state=False
        ).feed()
        indexed = build_quality_check(
            workload, mode=mode, window_minutes=30.0, indexed_state=True
        ).feed()
        assert indexed.rows() == reference.rows()

    def test_sharded_indexed_matches_reference(self):
        workload = quality_check_workload(n_products=40, seed=52)
        expected = build_quality_check(
            workload, mode="UNRESTRICTED", window_minutes=30.0,
            indexed_state=False,
        ).feed().rows()
        scenario = build_quality_check_sharded(
            workload, n_shards=3, mode="UNRESTRICTED", window_minutes=30.0,
            indexed_state=True,
        ).feed()
        try:
            assert scenario.rows() == expected
        finally:
            scenario.engine.close()


class TestDifferentialExceptionSeq:
    """Active-expiration timers must behave identically under both flags
    (the flag gates SEQ state only, but shares the clock and engine)."""

    def run_outcomes(self, indexed, mode):
        engine = Engine(indexed_state=indexed)
        for name in ("a1", "a2", "a3"):
            engine.create_stream(name, "tagid str, tagtime float")
        op = ExceptionSeqOperator(
            engine,
            [SeqArg("a1"), SeqArg("a2"), SeqArg("a3")],
            window=OperatorWindow(10.0, 0, "following"),
            mode=mode,
            partition_by=lambda t: t["tagid"],
        )
        rng = random.Random(29)
        ts = 0.0
        for _ in range(120):
            ts += rng.choice([0.5, 2.0, 7.0])
            stream = rng.choice(["a1", "a2", "a3"])
            tag = rng.choice(["t1", "t2", "t3", "t4"])
            engine.push(stream, {"tagid": tag, "tagtime": ts}, ts=ts)
        engine.advance_time(ts + 100.0)  # fire every remaining expiration
        return engine, op

    @pytest.mark.parametrize(
        "mode", [PairingMode.RECENT, PairingMode.CONSECUTIVE]
    )
    def test_outcome_sequences_identical(self, mode):
        outcomes = []
        for indexed in (False, True):
            _, op = self.run_outcomes(indexed, mode)
            outcomes.append([
                (
                    o.level,
                    o.reason.value,
                    o.ts,
                    tuple((t.ts, t.seq) for t in o.partial),
                )
                for o in op.outcomes
            ])
        assert outcomes[0] == outcomes[1]

    def test_idle_states_released(self):
        """Terminated automata leave no residue: after the final timers
        fire, every per-tag state entry is gone."""
        engine, op = self.run_outcomes(True, PairingMode.CONSECUTIVE)
        # Any state still in the table is mid-sequence with an armed timer;
        # after the long advance above, expirations have all fired.
        assert op._states == {}
        assert engine.clock.pending_timers() == 0


class TestStateBounds:
    """Windowed UNRESTRICTED with many one-shot tags: the expiry heap must
    keep held-tuple counts bounded and drop idle partitions."""

    def one_shot_engine(self, n_tags, duration=10.0):
        engine = Engine()
        window = OperatorWindow(duration, 1, "preceding")
        op = build_op(
            engine, ["a", "b"], PairingMode.UNRESTRICTED,
            window=window, partition_by=lambda t: t["tagid"],
        )
        for i in range(n_tags):
            engine.push(
                "a", {"tagid": f"t{i}", "tagtime": float(i)}, ts=float(i)
            )
        return engine, op

    def test_state_and_partitions_bounded(self):
        engine, op = self.one_shot_engine(2000)
        # Only tags inside the current window may retain history.
        assert op.state_size <= 12
        assert len(op._partitions) <= 12
        state_invariant(op)

    def test_peak_state_bounded(self):
        _, op = self.one_shot_engine(2000)
        assert op.peak_state_size <= 14

    def test_expiry_work_tracks_expirations_not_partitions(self):
        """Each one-shot tag is popped O(1) times: total expiry work stays
        linear in expirations, not partitions-times-ticks."""
        _, op = self.one_shot_engine(2000)
        assert op.sweep_touches <= 3 * 2000

    def test_idle_engine_expires_via_heartbeat(self):
        """With no further arrivals, a clock heartbeat alone must drain the
        remaining windowed state (the reference sweep cannot do this — it
        only runs on arrivals)."""
        engine, op = self.one_shot_engine(50)
        assert op.state_size > 0
        engine.advance_time(1000.0)
        assert op.state_size == 0
        assert op._partitions == {}
        state_invariant(op)

    def test_flush_cancels_expiry_timer(self):
        engine, op = self.one_shot_engine(50)
        engine.flush()  # drain() must cancel the periodic expiry timer
        assert engine.clock.pending_timers() == 0

    def test_sharded_one_shot_tags_bounded(self):
        from repro.rfid.scenarios import quality_query_text

        engine = ShardedEngine(n_shards=4)
        for name in ("c1", "c2", "c3", "c4"):
            engine.create_stream(name, "readerid str, tagid str, tagtime float")
        handle = engine.query(
            quality_query_text("UNRESTRICTED", window_minutes=30.0),
            name="quality",
        )
        try:
            for i in range(400):
                engine.push(
                    "c1",
                    {"readerid": "r0", "tagid": f"t{i}", "tagtime": i * 60.0},
                    ts=i * 60.0,
                )
            # 30-minute window, one reading per minute: ~30 live tags.
            assert handle.state_size <= 35
        finally:
            engine.close()
