"""Unit tests for the symmetric cross-sub-query window operator (Example 8)."""

import pytest

from repro.core.operators import SymmetricExistsOperator
from repro.dsms import Engine
from repro.dsms.errors import WindowError


def door_engine():
    engine = Engine()
    engine.create_stream("tag_readings", "tagid str, tagtype str, tagtime float")
    return engine


def push(engine, tagid, tagtype, ts):
    engine.push(
        "tag_readings", {"tagid": tagid, "tagtype": tagtype, "tagtime": ts}, ts=ts
    )


def make_theft_detector(engine, tau=60.0, negate=True):
    """Items with no person within tau before or after."""
    return SymmetricExistsOperator(
        engine,
        outer_stream="tag_readings",
        inner_stream="tag_readings",
        preceding=tau,
        following=tau,
        outer_where=lambda t: t["tagtype"] == "item",
        inner_where=lambda cand, outer: cand["tagtype"] == "person",
        negate=negate,
    )


class TestNotExists:
    def test_person_before_item_suppresses(self):
        engine = door_engine()
        op = make_theft_detector(engine)
        push(engine, "p1", "person", 100.0)
        push(engine, "i1", "item", 120.0)
        engine.advance_time(500.0)
        assert op.emitted == 0
        assert op.suppressed == 1

    def test_person_after_item_suppresses(self):
        engine = door_engine()
        op = make_theft_detector(engine)
        push(engine, "i1", "item", 100.0)
        push(engine, "p1", "person", 130.0)
        engine.advance_time(500.0)
        assert op.emitted == 0

    def test_lonely_item_alerts_at_decision_point(self):
        engine = door_engine()
        op = make_theft_detector(engine)
        push(engine, "i1", "item", 100.0)
        engine.advance_time(159.0)
        assert op.emitted == 0  # still inside the following window
        engine.advance_time(161.0)
        assert op.emitted == 1
        outer, decided_at = op.results[0]
        assert outer["tagid"] == "i1"
        assert decided_at == 160.0

    def test_person_outside_window_does_not_suppress(self):
        engine = door_engine()
        op = make_theft_detector(engine, tau=60.0)
        push(engine, "p1", "person", 0.0)
        push(engine, "i1", "item", 100.0)   # person was 100s ago > tau
        push(engine, "p2", "person", 300.0)  # way after
        engine.advance_time(500.0)
        assert op.emitted == 1

    def test_boundary_inclusive(self):
        engine = door_engine()
        op = make_theft_detector(engine, tau=60.0)
        push(engine, "p1", "person", 40.0)
        push(engine, "i1", "item", 100.0)  # exactly tau later
        engine.advance_time(500.0)
        assert op.suppressed == 1

    def test_item_never_witnesses_itself(self):
        engine = door_engine()
        op = SymmetricExistsOperator(
            engine, "tag_readings", "tag_readings", 60.0, 60.0,
            outer_where=lambda t: t["tagtype"] == "item",
            inner_where=lambda cand, outer: cand["tagtype"] == "item",
            negate=True,
        )
        push(engine, "i1", "item", 100.0)
        engine.advance_time(500.0)
        assert op.emitted == 1  # own reading is not a witness

    def test_multiple_pending_items(self):
        engine = door_engine()
        op = make_theft_detector(engine)
        push(engine, "i1", "item", 100.0)
        push(engine, "i2", "item", 110.0)
        push(engine, "p1", "person", 130.0)  # saves both
        engine.advance_time(500.0)
        assert op.suppressed == 2
        assert op.emitted == 0

    def test_callback(self):
        engine = door_engine()
        got = []
        op = SymmetricExistsOperator(
            engine, "tag_readings", "tag_readings", 60.0, 60.0,
            outer_where=lambda t: t["tagtype"] == "item",
            inner_where=lambda cand, outer: cand["tagtype"] == "person",
            on_result=lambda tup, at: got.append((tup["tagid"], at)),
        )
        push(engine, "i1", "item", 0.0)
        engine.advance_time(100.0)
        assert got == [("i1", 60.0)]
        assert op.emitted == 1


class TestExists:
    def test_emits_on_prior_witness_immediately(self):
        engine = door_engine()
        op = make_theft_detector(engine, negate=False)
        push(engine, "p1", "person", 90.0)
        push(engine, "i1", "item", 100.0)
        assert op.emitted == 1  # no waiting needed

    def test_emits_when_witness_arrives_later(self):
        engine = door_engine()
        op = make_theft_detector(engine, negate=False)
        push(engine, "i1", "item", 100.0)
        assert op.emitted == 0
        push(engine, "p1", "person", 140.0)
        assert op.emitted == 1

    def test_suppresses_when_no_witness(self):
        engine = door_engine()
        op = make_theft_detector(engine, negate=False)
        push(engine, "i1", "item", 100.0)
        engine.advance_time(1000.0)
        assert op.emitted == 0
        assert op.suppressed == 1


class TestSeparateStreams:
    def test_two_distinct_streams(self):
        engine = Engine()
        engine.create_stream("items", "tagid str, tagtime float")
        engine.create_stream("persons", "tagid str, tagtime float")
        op = SymmetricExistsOperator(
            engine, "items", "persons", 30.0, 30.0, negate=True
        )
        engine.push("items", {"tagid": "i1", "tagtime": 0.0}, ts=0.0)
        engine.push("persons", {"tagid": "p1", "tagtime": 10.0}, ts=10.0)
        engine.push("items", {"tagid": "i2", "tagtime": 100.0}, ts=100.0)
        engine.advance_time(300.0)
        assert [t["tagid"] for t, __ in op.results] == ["i2"]


class TestEdgeCases:
    def test_zero_following_decides_immediately(self):
        engine = door_engine()
        op = SymmetricExistsOperator(
            engine, "tag_readings", "tag_readings", 60.0, 0.0,
            outer_where=lambda t: t["tagtype"] == "item",
            inner_where=lambda cand, outer: cand["tagtype"] == "person",
            negate=True,
        )
        push(engine, "i1", "item", 100.0)
        assert op.emitted == 1  # decided at arrival

    def test_negative_width_rejected(self):
        engine = door_engine()
        with pytest.raises(WindowError):
            SymmetricExistsOperator(
                engine, "tag_readings", "tag_readings", -1.0, 0.0
            )

    def test_stop_cancels_pending(self):
        engine = door_engine()
        op = make_theft_detector(engine)
        push(engine, "i1", "item", 100.0)
        op.stop()
        engine.advance_time(1000.0)
        assert op.emitted == 0
        assert op.pending_count == 0
