"""Unit tests for the ESL-EV lexer."""

import pytest

from repro.core.language.lexer import tokenize
from repro.core.language.tokens import TokenType
from repro.dsms.errors import EslSyntaxError


def kinds(text):
    return [t.type for t in tokenize(text)[:-1]]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_idents_and_keywords_are_idents(self):
        assert kinds("SELECT foo") == [TokenType.IDENT, TokenType.IDENT]

    def test_eof_terminated(self):
        assert tokenize("")[-1].type is TokenType.EOF

    def test_numbers(self):
        assert values("1 2.5 1e3 2.5e-1") == [1, 2.5, 1000.0, 0.25]

    def test_integer_stays_int(self):
        tokens = tokenize("42")
        assert tokens[0].value == 42
        assert isinstance(tokens[0].value, int)

    def test_strings_with_escaped_quote(self):
        assert values("'it''s'") == ["it's"]

    def test_unterminated_string(self):
        with pytest.raises(EslSyntaxError):
            tokenize("'oops")

    def test_punctuation(self):
        assert kinds("( ) [ ] , ; .") == [
            TokenType.LPAREN, TokenType.RPAREN, TokenType.LBRACKET,
            TokenType.RBRACKET, TokenType.COMMA, TokenType.SEMICOLON,
            TokenType.DOT,
        ]

    def test_star_token(self):
        assert kinds("*") == [TokenType.STAR]

    def test_unexpected_char(self):
        with pytest.raises(EslSyntaxError):
            tokenize("SELECT @")


class TestOperators:
    def test_two_char_operators(self):
        assert values("<= >= <> != || :=") == [
            "<=", ">=", "<>", "!=", "||", ":=",
        ]

    def test_one_char_operators(self):
        assert values("= < > + - / %") == ["=", "<", ">", "+", "-", "/", "%"]

    def test_unicode_comparisons_normalized(self):
        # The paper's typeset queries use ≤ and ≥.
        assert values("a ≤ 5") == ["a", "<=", 5]
        assert values("a ≥ 5") == ["a", ">=", 5]

    def test_dotted_reference(self):
        assert values("r1.tagid") == ["r1", ".", "tagid"]

    def test_decimal_vs_dot(self):
        # "1.5" is a number; "r1.5"? identifiers cannot contain dots.
        assert values("1.5") == [1.5]
        assert kinds("x.5") == [TokenType.IDENT, TokenType.DOT, TokenType.NUMBER]


class TestCommentsAndPositions:
    def test_line_comment(self):
        assert values("SELECT -- comment\n x") == ["SELECT", "x"]

    def test_block_comment(self):
        assert values("SELECT /* anything \n at all */ x") == ["SELECT", "x"]

    def test_unterminated_block_comment(self):
        with pytest.raises(EslSyntaxError):
            tokenize("/* never closed")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_is_keyword_case_insensitive(self):
        token = tokenize("select")[0]
        assert token.is_keyword("SELECT")
        assert not token.is_keyword("FROM")


class TestPaperQueries:
    def test_example1_lexes(self):
        text = """
        INSERT INTO cleaned_readings
        SELECT * FROM readings AS r1
        WHERE NOT EXISTS
        (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
         WHERE r2.reader_id = r1.reader_id
           AND r2.tag_id = r1.tag_id)
        """
        tokens = tokenize(text)
        assert tokens[-1].type is TokenType.EOF
        assert any(t.is_keyword("PRECEDING") for t in tokens[:-1])

    def test_example7_star_and_le(self):
        text = "WHERE SEQ(R1*, R2) MODE CHRONICLE AND R2.tagtime - LAST(R1*).tagtime ≤ 5 SECONDS"
        tokens = tokenize(text)
        stars = [t for t in tokens if t.type is TokenType.STAR]
        assert len(stars) == 2
        assert any(t.type is TokenType.OPERATOR and t.value == "<=" for t in tokens)
