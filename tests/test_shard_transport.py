"""Shard-transport codec and worker tests.

The frame codec is tested in isolation — round-trip property tests over
every value shape the engine ships (ints, floats, strings with embedded
NULs, None, bools, nested dicts), plus rejection of short, truncated,
corrupt, and mis-typed frames: a damaged frame must raise
:class:`FrameCodecError`, never decode as a shorter valid frame.

Worker tests cross every multiprocessing start method the host offers
(``fork``/``spawn``/``forkserver``): the codec's interned tables are
derived independently on each side of the pipe from the pickled
:class:`ShardSpec`, so a spawn-fresh interpreter must decode frames the
fork-built router encoded.  These are marked ``transport``.
"""

import multiprocessing
import random

import pytest

from repro.dsms.errors import FrameCodecError, SchemaError, TransportError
from repro.dsms.schema import FieldType, Schema
from repro.dsms.transport import (
    FT_BATCH,
    FT_OUTPUT,
    AdaptiveBatcher,
    FrameCodec,
    decode_frame,
    dumps_oob,
    encode_frame,
    loads_oob,
)
from repro.rfid import (
    build_quality_check,
    build_quality_check_sharded,
    quality_check_workload,
)


class _Spec:
    """Minimal stand-in for ShardSpec: the codec only reads these two."""

    def __init__(self, stream_table, sinks):
        self.stream_table = stream_table
        self.sinks = sinks


def make_spec():
    return _Spec(
        stream_table=(
            ("readings", Schema.parse("reader_id str, tag_id str, temp float")),
            ("events", Schema.parse("tag_id str, kind int, ok bool")),
            ("anything", Schema.of("a", "b")),
        ),
        sinks=(("q1", "query", "q1", "all"), ("q2", "query", "q2", "all")),
    )


def random_records(rng, n=400):
    """Records covering every column path: positional and mapping values,
    schema-typed and ANY columns, None, embedded NULs, non-ASCII."""
    records = []
    for i in range(n):
        which = rng.randrange(6)
        ts = i * 0.01
        if which == 0:
            records.append(
                (i, "readings", (f"r{i % 7}", f"tag{i}", rng.random() * 40), ts)
            )
        elif which == 1:
            records.append(
                (
                    i,
                    "events",
                    {"tag_id": f"t{i}", "kind": rng.randrange(5),
                     "ok": bool(i % 2)},
                    ts,
                )
            )
        elif which == 2:
            records.append(
                (i, "anything", ({"nested": [1, 2, {"x": None}]}, None), ts)
            )
        elif which == 3:
            records.append((i, "readings", ("nul\x00str", None, i), ts))
        elif which == 4:
            records.append((i, "events", ("κλειδί", None, None), ts))
        else:
            records.append(
                (i, "readings", {"reader_id": None, "temp": float(i)}, ts)
            )
    return records


def normalized(spec, records):
    """What the shard engine must see: mappings resolved positionally."""
    schemas = dict(spec.stream_table)
    out = []
    for g, stream, values, ts in records:
        if isinstance(values, dict):
            values = tuple(values.get(n) for n in schemas[stream].names)
        else:
            values = tuple(values)
        out.append((g, stream, values, ts))
    return out


# -- frame envelope ---------------------------------------------------------


def test_frame_envelope_round_trip():
    frame = encode_frame(FT_BATCH, b"payload bytes")
    ftype, payload = decode_frame(frame)
    assert ftype == FT_BATCH
    assert bytes(payload) == b"payload bytes"


def test_short_frame_rejected():
    with pytest.raises(FrameCodecError, match="short frame"):
        decode_frame(b"\x1f")


def test_bad_magic_rejected():
    frame = bytearray(encode_frame(FT_BATCH, b"x"))
    frame[0] ^= 0xFF
    with pytest.raises(FrameCodecError, match="magic"):
        decode_frame(bytes(frame))


def test_unknown_frame_type_rejected():
    frame = bytearray(encode_frame(FT_BATCH, b"x"))
    frame[2] = 200  # ftype byte
    with pytest.raises(FrameCodecError, match="unknown frame type"):
        decode_frame(bytes(frame))


def test_truncated_frame_rejected():
    frame = encode_frame(FT_BATCH, b"some payload")
    with pytest.raises(FrameCodecError, match="truncated"):
        decode_frame(frame[:-3])


def test_corrupt_payload_rejected():
    frame = bytearray(encode_frame(FT_BATCH, b"some payload"))
    frame[-1] ^= 0x01
    with pytest.raises(FrameCodecError, match="CRC"):
        decode_frame(bytes(frame))


def test_wire_damage_raises_the_restartable_subclass():
    """CRC/magic/truncation failures raise FrameCorrupt — a FrameCodecError
    the supervisor classifies as restartable wire damage — while encoding
    errors (bad records) stay plain FrameCodecError application errors."""
    from repro.dsms.errors import FrameCorrupt

    assert issubclass(FrameCorrupt, FrameCodecError)
    frame = bytearray(encode_frame(FT_BATCH, b"some payload"))
    frame[-1] ^= 0x01
    with pytest.raises(FrameCorrupt):
        decode_frame(bytes(frame))
    with pytest.raises(FrameCorrupt):
        decode_frame(b"\x1f")
    with pytest.raises(FrameCorrupt):
        decode_frame(encode_frame(FT_BATCH, b"some payload")[:-3])


def test_oob_pickle_round_trip():
    obj = {"k": [1, 2.5, None], "blob": b"\x00" * 64, "s": "κ"}
    encoded = dumps_oob(obj)
    decoded, offset = loads_oob(encoded)
    assert decoded == obj
    assert offset == len(encoded)
    with pytest.raises(FrameCodecError, match="pickle"):
        loads_oob(encoded[: len(encoded) // 2])


# -- batch codec ------------------------------------------------------------


@pytest.mark.parametrize("codec_name", ["framed", "pickle"])
@pytest.mark.parametrize("seed", [7, 99, 1234])
def test_batch_round_trip_property(codec_name, seed):
    spec = make_spec()
    codec = FrameCodec(codec_name, spec)
    records = random_records(random.Random(seed))
    frame = codec.encode_batch(42, records, (len(records), 123.5))
    ftype, payload = decode_frame(frame)
    assert ftype == FT_BATCH
    seq, decoded, advance = codec.decode_batch(payload)
    assert seq == 42
    assert advance == (len(records), 123.5)
    got = [(g, s, tuple(v), ts) for g, s, v, ts in normalized(spec, decoded)]
    assert got == normalized(spec, records)


def test_batch_without_advance():
    spec = make_spec()
    codec = FrameCodec("framed", spec)
    records = [(0, "readings", ("r", "t", 1.5), 1.0)]
    _, payload = decode_frame(codec.encode_batch(3, records, None))
    seq, decoded, advance = codec.decode_batch(payload)
    assert seq == 3 and advance is None
    assert [tuple(r[2]) for r in decoded] == [("r", "t", 1.5)]


def test_batch_unknown_stream_raises():
    codec = FrameCodec("framed", make_spec())
    with pytest.raises(FrameCodecError, match="interned"):
        codec.encode_batch(0, [(0, "nope", ("x",), 0.0)], None)


def test_batch_arity_and_field_errors_match_ingester():
    """Parent-side normalization raises the same SchemaError shapes the
    shard-side ingester would — the framed codec moves the check across
    the pipe without changing its semantics."""
    codec = FrameCodec("framed", make_spec())
    with pytest.raises(SchemaError, match="3-column schema"):
        codec.encode_batch(0, [(0, "readings", ("only", "two"), 0.0)], None)
    with pytest.raises(SchemaError, match=r"unknown fields \['bogus'\]"):
        codec.encode_batch(
            0, [(0, "readings", {"bogus": 1, "tag_id": "t"}, 0.0)], None
        )


def test_batch_truncated_payload_rejected():
    spec = make_spec()
    codec = FrameCodec("framed", spec)
    records = random_records(random.Random(5), n=50)
    frame = codec.encode_batch(1, records, None)
    _, payload = decode_frame(frame)
    with pytest.raises(FrameCodecError):
        codec.decode_batch(payload[: len(payload) // 3])


def test_wire_format_hints():
    assert FieldType.INT.wire_format == "q"
    assert FieldType.FLOAT.wire_format == "d"
    assert FieldType.TIMESTAMP.wire_format == "d"
    assert FieldType.BOOL.wire_format == "B"
    assert FieldType.STR.wire_format == "U"
    assert FieldType.ANY.wire_format is None


# -- output codec -----------------------------------------------------------


@pytest.mark.parametrize("codec_name", ["framed", "pickle"])
def test_outputs_round_trip(codec_name):
    codec = FrameCodec(codec_name, make_spec())
    outputs = {
        "q1": [
            (i * 0.5, i, 3, i, (f"tag{i}", float(i), i % 3))
            for i in range(200)
        ],
        "q2": [  # ragged widths force the pickle fallback block
            (1.0, 1, 3, 0, (None, "x\x00y")),
            (2.0, 2, 3, 1, ({"deep": 1},)),
        ],
    }
    frame = codec.encode_outputs(7, outputs, 0.25, 0.5)
    ftype, payload = decode_frame(frame)
    assert ftype == FT_OUTPUT
    ack, decoded, decode_s, encode_s = codec.decode_outputs(payload, 3)
    assert (ack, decode_s, encode_s) == (7, 0.25, 0.5)
    assert decoded == outputs


def test_outputs_empty_run_round_trip():
    codec = FrameCodec("framed", make_spec())
    _, payload = decode_frame(codec.encode_outputs(9, {"q1": []}, 0.0, 0.0))
    assert codec.decode_outputs(payload, 0)[1] == {"q1": []}


def test_outputs_unknown_sink_raises():
    codec = FrameCodec("framed", make_spec())
    with pytest.raises(FrameCodecError, match="unknown sink"):
        codec.encode_outputs(0, {"nope": []}, 0.0, 0.0)


# -- adaptive batcher -------------------------------------------------------


def test_adaptive_batcher_grows_on_fast_full_frames():
    batcher = AdaptiveBatcher(128, min_size=64, max_size=1024)
    batcher.observe(rtt_s=0.001, n_records=128)
    assert batcher.size == 256 and batcher.growths == 1
    batcher.observe(rtt_s=0.001, n_records=100)  # partial frame: no growth
    assert batcher.size == 256
    for _ in range(10):
        batcher.observe(rtt_s=0.001, n_records=batcher.size)
    assert batcher.size == 1024  # clamped at max


def test_adaptive_batcher_shrinks_on_slow_acks():
    batcher = AdaptiveBatcher(512, min_size=64, max_size=1024)
    batcher.observe(rtt_s=0.2, n_records=512)
    assert batcher.size == 256 and batcher.shrinks == 1
    for _ in range(10):
        batcher.observe(rtt_s=0.2, n_records=batcher.size)
    assert batcher.size == 64  # clamped at min


def test_adaptive_batcher_initial_clamped():
    assert AdaptiveBatcher(1, min_size=64).size == 64
    assert AdaptiveBatcher(10**6, max_size=8192).size == 8192


def test_adaptive_batcher_ignores_clock_anomalies():
    """Zero, negative, NaN, or infinite RTT samples (clock steps, resumed
    wedged workers) must not move the batch size in either direction."""
    batcher = AdaptiveBatcher(256, min_size=64, max_size=1024)
    for rtt in (0.0, -1.0, float("nan"), float("inf"), float("-inf")):
        batcher.observe(rtt_s=rtt, n_records=256)
    assert batcher.size == 256
    assert batcher.growths == 0 and batcher.shrinks == 0
    batcher.observe(rtt_s=0.001, n_records=256)  # sane sample still works
    assert batcher.size == 512


# -- persistent workers across start methods --------------------------------


def _start_methods():
    return multiprocessing.get_all_start_methods()


@pytest.mark.transport
@pytest.mark.parametrize("start_method", _start_methods())
@pytest.mark.parametrize("codec_name", ["framed", "pickle"])
def test_pipe_workers_match_single_across_start_methods(
    start_method, codec_name
):
    """A spawn-fresh worker interpreter must decode what the router
    encoded: both sides derive interned stream ids and column packers
    independently from the pickled ShardSpec."""
    workload = quality_check_workload(n_products=20, seed=77)
    expected = build_quality_check(workload).feed().rows()
    scenario = build_quality_check_sharded(
        workload,
        n_shards=2,
        executor="parallel",
        batch_size=32,
        codec=codec_name,
        start_method=start_method,
    )
    with scenario.engine as engine:
        assert scenario.feed().rows() == expected
        stats = engine.transport_stats()
        assert stats["codec"] == codec_name
        assert stats["totals"]["records_sent"] == len(workload.trace)
        assert stats["totals"]["bytes_sent"] > 0
        assert stats["totals"]["round_trips"] > 0


@pytest.mark.transport
def test_worker_error_surfaces_and_tears_down():
    """A worker-side failure comes back as TransportError carrying the
    worker traceback, and the executor tears every worker down."""
    from repro.dsms import ShardedEngine

    engine = ShardedEngine(n_shards=2, executor="parallel", codec="pickle",
                           batch_size=4)
    engine.create_stream("x", "a str, b float")
    engine.create_stream("y", "a str, b float")
    engine.query(
        "SELECT x2.a FROM x AS x1, y AS x2 WHERE SEQ(x1, x2) "
        "AND x1.a=x2.a",
        name="q",
    )
    try:
        with pytest.raises((TransportError, SchemaError)):
            # Wrong arity ships raw under the pickle codec; the shard-side
            # ingester rejects it inside the worker.
            for i in range(32):
                engine.push("x", ("only-one-value",), ts=float(i))
            engine.flush()
        assert engine.alive_workers() == 0
    finally:
        engine.close()


@pytest.mark.transport
def test_framed_codec_rejects_bad_records_before_the_wire():
    """Same bad record, framed codec: the router-side encoder rejects it
    with the ingester's error shape, and teardown still happens."""
    from repro.dsms import ShardedEngine

    engine = ShardedEngine(n_shards=2, executor="parallel", codec="framed",
                           batch_size=4)
    engine.create_stream("x", "a str, b float")
    engine.create_stream("y", "a str, b float")
    engine.query(
        "SELECT x2.a FROM x AS x1, y AS x2 WHERE SEQ(x1, x2) "
        "AND x1.a=x2.a",
        name="q",
    )
    try:
        with pytest.raises(SchemaError, match="2-column schema"):
            for i in range(32):
                engine.push("x", ("only-one-value",), ts=float(i))
            engine.flush()
        assert engine.alive_workers() == 0
    finally:
        engine.close()
