"""Unit tests for the semantic analyzer."""

import pytest

from repro.core.language.analyzer import analyze, promote_aggregates
from repro.core.language.ast_nodes import SelectStatement
from repro.core.language.parser import AggregateCall, parse_program
from repro.dsms import Engine
from repro.dsms.errors import EslSemanticError
from repro.dsms.expressions import FunctionCall


def analyzed(engine, sql):
    statements = parse_program(sql)
    assert isinstance(statements[-1], SelectStatement)
    return analyze(statements[-1], engine)


@pytest.fixture
def eng():
    engine = Engine()
    for name in ("c1", "c2", "c3", "c4", "r1", "r2"):
        engine.create_stream(name, "readerid str, tagid str, tagtime float")
    engine.create_table("ctx", "tagid str, owner str")
    return engine


class TestSources:
    def test_stream_resolution(self, eng):
        analysis = analyzed(eng, "SELECT tagid FROM c1")
        assert analysis.sources[0].is_stream

    def test_table_resolution(self, eng):
        analysis = analyzed(eng, "SELECT owner FROM ctx")
        assert analysis.sources[0].is_table
        assert analysis.kind == "table_query"

    def test_unknown_source(self, eng):
        with pytest.raises(EslSemanticError):
            analyzed(eng, "SELECT a FROM nope")

    def test_duplicate_alias(self, eng):
        with pytest.raises(EslSemanticError):
            analyzed(eng, "SELECT a FROM c1 AS x, c2 AS x")

    def test_multi_stream_without_temporal_rejected(self, eng):
        with pytest.raises(EslSemanticError, match="temporal"):
            analyzed(eng, "SELECT a FROM c1, c2")

    def test_source_for_lookup(self, eng):
        analysis = analyzed(eng, "SELECT tagid FROM c1 AS x")
        assert analysis.source_for("X").name == "c1"
        with pytest.raises(EslSemanticError):
            analysis.source_for("zz")


class TestKinds:
    def test_filter(self, eng):
        assert analyzed(eng, "SELECT tagid FROM c1").kind == "filter"

    def test_aggregate_by_function(self, eng):
        assert analyzed(eng, "SELECT count(tagid) FROM c1").kind == "aggregate"

    def test_aggregate_by_group(self, eng):
        analysis = analyzed(
            eng, "SELECT tagid, count(tagid) FROM c1 GROUP BY tagid"
        )
        assert analysis.kind == "aggregate"

    def test_temporal(self, eng):
        analysis = analyzed(eng, "SELECT tagid FROM c1, c2 WHERE SEQ(C1, C2)")
        assert analysis.kind == "temporal"
        assert analysis.temporal is not None


class TestWhereClassification:
    def test_guard_terms_collected(self, eng):
        analysis = analyzed(
            eng,
            "SELECT tagid FROM c1, c2 WHERE SEQ(C1, C2) "
            "AND c1.tagid = c2.tagid AND c1.tagtime > 5",
        )
        # The tagid equality is hoisted into partitioning; the scalar
        # comparison stays in the guard.
        assert len(analysis.guard_terms) == 1
        assert analysis.partition_field == "tagid"

    def test_gap_terms_split_out(self, eng):
        analysis = analyzed(
            eng,
            "SELECT tagid FROM r1, r2 WHERE SEQ(R1*, R2) "
            "AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS",
        )
        assert len(analysis.gap_terms) == 1
        assert len(analysis.guard_terms) == 0

    def test_two_temporal_ops_rejected(self, eng):
        with pytest.raises(EslSemanticError):
            analyzed(
                eng,
                "SELECT tagid FROM c1, c2 WHERE SEQ(C1, C2) AND SEQ(C2, C1)",
            )

    def test_seq_inside_or_rejected(self, eng):
        with pytest.raises(EslSemanticError):
            analyzed(
                eng,
                "SELECT tagid FROM c1, c2 "
                "WHERE SEQ(C1, C2) OR c1.tagid = 'x'",
            )

    def test_seq_in_comparison_rejected(self, eng):
        with pytest.raises(EslSemanticError):
            analyzed(eng, "SELECT a FROM c1, c2 WHERE (SEQ(C1, C2)) = 1")

    def test_clevel_threshold_extracted(self, eng):
        analysis = analyzed(
            eng,
            "SELECT tagid FROM c1, c2 WHERE (CLEVEL_SEQ(C1, C2)) < 2",
        )
        assert analysis.clevel is not None
        assert analysis.clevel.accepts(1)
        assert not analysis.clevel.accepts(2)

    def test_clevel_flipped_comparison(self, eng):
        analysis = analyzed(
            eng, "SELECT tagid FROM c1, c2 WHERE 2 > (CLEVEL_SEQ(C1, C2))"
        )
        assert analysis.clevel.accepts(1)
        assert not analysis.clevel.accepts(3)

    def test_clevel_requires_literal(self, eng):
        with pytest.raises(EslSemanticError):
            analyzed(
                eng,
                "SELECT tagid FROM c1, c2 "
                "WHERE (CLEVEL_SEQ(C1, C2)) < c1.tagtime",
            )

    def test_exists_terms_extracted(self, eng):
        analysis = analyzed(
            eng,
            "SELECT tagid FROM c1 WHERE NOT EXISTS "
            "(SELECT owner FROM ctx WHERE ctx.tagid = c1.tagid)",
        )
        assert len(analysis.exists_terms) == 1
        assert analysis.exists_terms[0].negate

    def test_not_wrapped_exists_normalized(self, eng):
        analysis = analyzed(
            eng,
            "SELECT tagid FROM c1 WHERE NOT (EXISTS "
            "(SELECT owner FROM ctx))",
        )
        assert len(analysis.exists_terms) == 1
        assert analysis.exists_terms[0].negate


class TestPartitionHoisting:
    def test_full_chain_hoisted(self, eng):
        analysis = analyzed(
            eng,
            "SELECT a FROM c1, c2, c3, c4 WHERE SEQ(C1, C2, C3, C4) "
            "AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid",
        )
        assert analysis.partition_field == "tagid"

    def test_partial_chain_not_hoisted(self, eng):
        analysis = analyzed(
            eng,
            "SELECT a FROM c1, c2, c3 WHERE SEQ(C1, C2, C3) "
            "AND C1.tagid=C2.tagid",
        )
        assert analysis.partition_field is None

    def test_mixed_fields_not_hoisted(self, eng):
        analysis = analyzed(
            eng,
            "SELECT a FROM c1, c2 WHERE SEQ(C1, C2) "
            "AND C1.tagid = C2.readerid",
        )
        assert analysis.partition_field is None

    def test_hoisted_terms_removed_from_guard(self, eng):
        # Partitioning by tagid makes the equality tautological within a
        # partition, so it is dropped — enabling the RECENT purge.
        analysis = analyzed(
            eng,
            "SELECT a FROM c1, c2 WHERE SEQ(C1, C2) AND C1.tagid = C2.tagid",
        )
        assert analysis.partition_field == "tagid"
        assert analysis.guard_terms == []


class TestMultiReturn:
    def test_direct_star_column_triggers(self, eng):
        analysis = analyzed(
            eng,
            "SELECT R1.tagid, R2.tagid FROM r1, r2 WHERE SEQ(R1*, R2)",
        )
        assert analysis.multi_return_alias == "r1"

    def test_aggregate_only_does_not_trigger(self, eng):
        analysis = analyzed(
            eng,
            "SELECT FIRST(R1*).tagid, COUNT(R1*) FROM r1, r2 "
            "WHERE SEQ(R1*, R2)",
        )
        assert analysis.multi_return_alias is None

    def test_two_starred_aliases_referenced_rejected(self, eng):
        with pytest.raises(EslSemanticError, match="footnote 4"):
            analyzed(
                eng,
                "SELECT R1.tagid, C1X.tagid FROM r1, c1 AS c1x, r2 "
                "WHERE SEQ(R1*, C1X*, R2)"
            )


class TestAggregatePromotion:
    def test_function_call_promoted(self, eng):
        promoted = promote_aggregates(
            FunctionCall("count", [FunctionCall("upper", [])]), eng
        )
        assert isinstance(promoted, AggregateCall)

    def test_scalar_not_promoted(self, eng):
        promoted = promote_aggregates(FunctionCall("upper", []), eng)
        assert isinstance(promoted, FunctionCall)

    def test_multiarg_not_promoted(self, eng):
        from repro.dsms.expressions import Literal

        promoted = promote_aggregates(
            FunctionCall("count", [Literal(1), Literal(2)]), eng
        )
        assert isinstance(promoted, FunctionCall)

    def test_uda_promoted(self, eng):
        from repro.dsms import uda_from_callables

        eng.register_uda(
            "myagg",
            uda_from_callables("myagg", lambda: 0, lambda s, v: s + 1,
                               lambda s: s),
        )
        analysis = analyzed(eng, "SELECT myagg(tagid) FROM c1")
        assert analysis.has_aggregates
