"""Differential, fallback-chain, and compile-cache tests for the native tier.

The native codegen tier compiles admission predicates to C kernels; its
contract is the same as the vectorized tier's, only stricter to verify:
whatever the host (compiler present, absent, cache warm, cache corrupted),
query output must be **byte-identical** to the interpreted engine — same
values, same timestamps, same order.  Every test here runs its workload
through all four tiers (interpreted / closure / vector / native) and
asserts exact equality, on every example query from the paper and on
adversarial value mixes (NULLs, huge ints, unicode LIKE subjects).
"""

import glob
import os

import pytest

from repro.dsms import native as native_mod
from repro.dsms.columns import ColumnBatch
from repro.dsms.engine import Engine
from repro.dsms.native import NativeState, find_compiler
from repro.dsms.native_codegen import lower_kernel, translation_unit
from repro.dsms.schema import Schema

pytestmark = pytest.mark.native

HAS_CC = find_compiler() is not None
requires_cc = pytest.mark.skipif(
    not HAS_CC, reason="no C compiler on this host"
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets a private kernel cache directory."""
    monkeypatch.setenv(native_mod.CACHE_ENV, str(tmp_path / "kernel-cache"))


TIER_FLAGS = {
    "interpreted": dict(compile_expressions=False, vectorized_admission=False),
    "closure": dict(vectorized_admission=False),
    "vector": dict(),
    "native": dict(native_admission=True),
}


def spaced(rows, start=0.0, step=1.0):
    return [(values, start + index * step) for index, values in enumerate(rows)]


def run_tiers(setup, batches, post=None):
    """Run one workload through all four execution tiers.

    ``setup(engine)`` declares streams/queries and returns a list of
    zero-arg result accessors; ``batches`` is ``[(stream, [(values, ts),
    ...]), ...]`` fed via ``push_columns`` in order (so cross-stream
    interleaving is preserved batch-for-batch).  Asserts byte-identical
    results across tiers and returns ``(common_output, native_engine)``.
    """
    per_tier = {}
    native_engine = None
    for tier, flags in TIER_FLAGS.items():
        engine = Engine(**flags)
        accessors = setup(engine)
        for stream, rows in batches:
            schema = engine.streams.get(stream).schema
            engine.push_columns(stream, ColumnBatch.from_rows(schema, rows))
        if post is not None:
            post(engine)
        per_tier[tier] = [accessor() for accessor in accessors]
        if tier == "native":
            native_engine = engine
    baseline = per_tier["interpreted"]
    for tier, output in per_tier.items():
        assert output == baseline, f"tier {tier!r} diverged from interpreted"
    return baseline, native_engine


def results_of(handle):
    return lambda: [(t.values, t.ts, t.stream) for t in handle.results]


# ---------------------------------------------------------------------------
# Paper queries, all eight examples, across every tier
# ---------------------------------------------------------------------------


class TestPaperQueryDifferentials:
    def test_example1_duplicate_filtering(self):
        query = """
        INSERT INTO cleaned_readings
        SELECT * FROM readings AS r1
        WHERE NOT EXISTS
          (SELECT * FROM TABLE( readings OVER
             (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
           WHERE r2.reader_id = r1.reader_id
             AND r2.tag_id = r1.tag_id)
        """

        def setup(engine):
            engine.create_stream(
                "readings", "reader_id str, tag_id str, read_time float"
            )
            engine.create_stream(
                "cleaned_readings", "reader_id str, tag_id str, read_time float"
            )
            engine.query(query)
            return [results_of(engine.collect("cleaned_readings"))]

        rows = []
        ts = 0.0
        for burst in range(40):
            tag = f"t{burst % 7}"
            reader = f"g{burst % 3}"
            for repeat in range(4):  # in-window duplicates collapse
                rows.append(
                    ({"reader_id": reader, "tag_id": tag, "read_time": ts}, ts)
                )
                ts += 0.2
            ts += 4.0  # gap: next sighting is a fresh reading
        batches = [
            ("readings", rows[start:start + 32])
            for start in range(0, len(rows), 32)
        ]
        (out,), _ = run_tiers(setup, batches)
        assert len(out) == 40

    def test_example2_location_tracking(self):
        query = """
        INSERT INTO object_movement
        SELECT tid, loc, tagtime
        FROM tag_locations WHERE NOT EXISTS
          (SELECT tagid FROM object_movement
           WHERE tagid = tid AND location = loc)
        """

        def setup(engine):
            engine.create_stream(
                "tag_locations", "readerid str, tid str, tagtime float, loc str"
            )
            engine.create_table(
                "object_movement", "tagid str, location str, start_time float"
            )
            engine.query(query)
            return [lambda: list(engine.table("object_movement").scan())]

        locations = ("dock", "belt", "yard")
        rows = [
            ({"readerid": "r", "tid": f"t{i % 9}", "tagtime": float(i),
              "loc": locations[(i // 9) % 3]}, float(i))
            for i in range(120)
        ]
        batches = [
            ("tag_locations", rows[start:start + 24])
            for start in range(0, len(rows), 24)
        ]
        (movement,), _ = run_tiers(setup, batches)
        assert len(movement) == 27  # 9 tags x 3 locations

    def test_example3_epc_aggregation(self):
        query = """
        SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
        AND extract_serial(tid) > 5000
        AND extract_serial(tid) < 9999
        """

        def setup(engine):
            engine.create_stream(
                "readings", "reader_id str, tid str, read_time float"
            )
            return [results_of(engine.query(query))]

        rows = []
        for i in range(200):
            company = "20" if i % 3 else "21"
            serial = 4000 + (i * 53) % 7000
            rows.append(
                ({"reader_id": "r", "tid": f"{company}.{i % 5}.{serial}",
                  "read_time": float(i)}, float(i))
            )
        batches = [
            ("readings", rows[start:start + 50])
            for start in range(0, len(rows), 50)
        ]
        (out,), _ = run_tiers(setup, batches)
        assert out

    def test_example5_exception_seq_and_clevel(self):
        exception = """
        SELECT A1.tagid, A2.tagid, A3.tagid
        FROM A1, A2, A3
        WHERE EXCEPTION_SEQ(A1, A2, A3)
        OVER [1 HOURS FOLLOWING A1]
        """
        clevel = """
        SELECT A1.tagid, A2.tagid, A3.tagid
        FROM A1, A2, A3
        WHERE (CLEVEL_SEQ(A1, A2, A3)
        OVER [1 HOURS FOLLOWING A1]) < 3
        """

        def setup(engine):
            for name in ("a1", "a2", "a3"):
                engine.create_stream(name, "tagid str, tagtime float")
            return [
                results_of(engine.query(exception)),
                results_of(engine.query(clevel)),
            ]

        batches = [
            ("a1", [({"tagid": "ok", "tagtime": 0.0}, 0.0)]),
            ("a2", [({"tagid": "ok", "tagtime": 10.0}, 10.0)]),
            ("a3", [({"tagid": "ok", "tagtime": 20.0}, 20.0)]),
            ("a1", [({"tagid": "skip", "tagtime": 100.0}, 100.0)]),
            ("a3", [({"tagid": "skip", "tagtime": 110.0}, 110.0)]),
            ("a2", [({"tagid": "late", "tagtime": 200.0}, 200.0)]),
            ("a1", [({"tagid": "timeout", "tagtime": 300.0}, 300.0)]),
        ]
        (exc, clv), _ = run_tiers(
            setup, batches, post=lambda engine: engine.advance_time(10000.0)
        )
        assert len(exc) == 3 and len(clv) == 3

    def test_example6_quality_sequence(self):
        plain = """
        SELECT C1.tagid, C1.tagtime,
               C2.tagtime, C3.tagtime, C4.tagtime
        FROM C1, C2, C3, C4
        WHERE SEQ(C1, C2, C3, C4)
        AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
        AND C1.tagid=C4.tagid
        """
        windowed = """
        SELECT C4.tagid, C1.tagtime
        FROM C1, C2, C3, C4
        WHERE SEQ(C1, C2, C3, C4)
        OVER [30 MINUTES PRECEDING C4]
        AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
        AND C1.tagid=C4.tagid
        """

        def setup(engine):
            for name in ("c1", "c2", "c3", "c4"):
                engine.create_stream(
                    name, "readerid str, tagid str, tagtime float"
                )
            return [
                results_of(engine.query(plain)),
                results_of(engine.query(windowed)),
            ]

        batches = []
        ts = 0.0
        for wave in range(12):
            for stage, stream in enumerate(("c1", "c2", "c3", "c4")):
                if wave % 4 == 3 and stream == "c3":
                    continue  # broken pass: stage skipped
                # Slow waves span 3 x 700s = 35min > the 30min window.
                step = 700.0 if wave % 4 == 2 else 30.0
                ts += step
                rows = [
                    ({"readerid": stream, "tagid": f"pallet{wave}",
                      "tagtime": ts}, ts)
                ]
                batches.append((stream, rows))
        (full, fast), _ = run_tiers(setup, batches)
        assert full and fast and len(fast) < len(full)

    def test_example7_star_containment(self):
        aggregated = """
        SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
        FROM R1, R2
        WHERE SEQ(R1*, R2) MODE CHRONICLE
        AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
        AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
        """
        per_tuple = """
        SELECT R1.tagid, R1.tagtime,
               R2.tagid, R2.tagtime
        FROM R1, R2
        WHERE SEQ(R1*, R2) MODE CHRONICLE
        AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
        AND R1.tagtime - R1.previous.tagtime < 1 SECONDS
        """

        def setup(engine):
            engine.create_stream("r1", "readerid str, tagid str, tagtime float")
            engine.create_stream("r2", "readerid str, tagid str, tagtime float")
            return [
                results_of(engine.query(aggregated)),
                results_of(engine.query(per_tuple)),
            ]

        batches = []
        ts = 0.0
        for case in range(8):
            product_rows = []
            for item in range(3 + case % 3):
                product_rows.append(
                    ({"readerid": "r1", "tagid": f"p{case}_{item}",
                      "tagtime": ts}, ts)
                )
                ts += 0.5
            batches.append(("r1", product_rows))
            ts += 2.0
            batches.append(
                ("r2", [({"readerid": "r2", "tagid": f"case{case}",
                          "tagtime": ts}, ts)])
            )
            ts += 10.0  # gap between cases
        (agg, per), _ = run_tiers(setup, batches)
        assert len(agg) == 8 and per

    def test_example8_door(self):
        query = """
        SELECT person.tagid
        FROM tag_readings AS person
        WHERE person.tagtype = 'person' AND NOT EXISTS
          (SELECT * FROM tag_readings AS item
           OVER [1 MINUTES
           PRECEDING AND FOLLOWING person]
           WHERE item.tagtype = 'item')
        """

        def setup(engine):
            engine.create_stream(
                "tag_readings", "tagid str, tagtype str, tagtime float"
            )
            return [results_of(engine.query(query))]

        rows = []
        ts = 0.0
        for episode in range(10):
            if episode % 3 == 0:  # person escorted by an item
                rows.append(({"tagid": f"i{episode}", "tagtype": "item",
                              "tagtime": ts}, ts))
                ts += 20.0
            rows.append(({"tagid": f"p{episode}", "tagtype": "person",
                          "tagtime": ts}, ts))
            ts += 300.0  # past the +-1 minute window
        batches = [("tag_readings", rows[start:start + 4])
                   for start in range(0, len(rows), 4)]
        (out,), _ = run_tiers(
            setup, batches, post=lambda engine: engine.advance_time(99999.0)
        )
        assert out  # lonely persons reported


# ---------------------------------------------------------------------------
# Native-engagement differentials: predicates the C tier actually compiles
# ---------------------------------------------------------------------------


class TestNativeKernelDifferentials:
    SCHEMA = "tag_id int, pressure float, loc str"

    def _filter_workload(self, n=600):
        locations = ("dock", "yard", "belt", None)
        rows = []
        for i in range(n):
            rows.append(
                ({"tag_id": None if i % 17 == 0 else i,
                  "pressure": None if i % 13 == 0 else (i * 37 % 100) / 100.0,
                  "loc": locations[i % 4]}, float(i))
            )
        return [("readings", rows[start:start + 100])
                for start in range(0, n, 100)]

    def test_strict_filter_mask(self):
        def setup(engine):
            engine.create_stream("readings", self.SCHEMA)
            return [results_of(engine.query(
                "SELECT tag_id, pressure FROM readings AS R "
                "WHERE R.pressure < 0.4 AND R.loc = 'dock' "
                "AND R.tag_id % 3 <> 1"
            ))]

        (out,), native_engine = run_tiers(setup, self._filter_workload())
        assert out
        if HAS_CC:
            stats = native_engine.native_state.stats()
            assert stats["kernels_built"] + stats["cache_hits"] >= 1
            assert stats["masked_batches"] > 0
            assert stats["lowering_fallbacks"] == 0

    def test_like_and_between_and_inlist(self):
        def setup(engine):
            engine.create_stream("readings", "tid str, w float, k int")
            return [results_of(engine.query(
                "SELECT tid FROM readings AS R WHERE tid LIKE '20.%.ca' "
                "AND R.w BETWEEN 0.2 AND 0.8 AND R.k IN (1, 2, 5, NULL)"
            ))]

        rows = []
        for i in range(400):
            suffix = ("ca", "fb", "ガ")[i % 3]
            rows.append(
                ({"tid": f"20.{i}.{suffix}",
                  "w": None if i % 11 == 0 else (i % 10) / 10.0,
                  "k": i % 7}, float(i))
            )
        batches = [("readings", rows[start:start + 80])
                   for start in range(0, 400, 80)]
        (out,), native_engine = run_tiers(setup, batches)
        assert out
        if HAS_CC:
            assert native_engine.native_state.stats()["masked_batches"] > 0

    def test_seq_lenient_mask(self):
        def setup(engine):
            engine.create_stream("a", "tag_id str, v float")
            engine.create_stream("b", "tag_id str, w float")
            return [results_of(engine.query(
                "SELECT X.tag_id, X.v, Y.w FROM a AS X, b AS Y "
                "WHERE SEQ(X, Y) AND X.tag_id = Y.tag_id "
                "AND X.v < 0.3 AND Y.w > 0.6"
            ))]

        batches = []
        ts = 0.0
        for start in range(0, 600, 100):
            a_rows = [({"tag_id": f"t{(start + i) * 7 % 40}",
                        "v": ((start + i) * 13 % 100) / 100.0}, ts + i)
                      for i in range(100)]
            b_rows = [({"tag_id": f"t{(start + i) * 11 % 40}",
                        "w": ((start + i) * 29 % 100) / 100.0}, ts + 150.0 + i)
                      for i in range(100)]
            batches.append(("a", a_rows))
            batches.append(("b", b_rows))
            ts += 400.0
        (out,), native_engine = run_tiers(setup, batches)
        assert out
        if HAS_CC:
            assert native_engine.native_state.stats()["masked_batches"] > 0

    def test_huge_int_taint_over_admits_safely(self):
        """|int| > 2^53 comparisons taint to UNKNOWN in C (always admit);
        the scalar re-check downstream restores exact semantics."""

        def setup(engine):
            engine.create_stream("readings", "x int, p float")
            return [results_of(engine.query(
                "SELECT x FROM readings AS R WHERE R.x > 100.5"
            ))]

        huge = 1 << 61
        rows = [({"x": value, "p": 0.0}, float(i)) for i, value in enumerate(
            [huge, -huge, 3, 200, None, huge + 1, 7, 101]
        )]
        (out,), _ = run_tiers(setup, [("readings", rows)])
        assert [values[0] for values, _t, _s in out] == [huge, 200, huge + 1, 101]

    def test_udf_predicate_falls_back_per_predicate(self):
        """A UDF conjunct cannot lower to C: only that predicate falls
        back (counted), the engine and every other query keep working."""

        def setup(engine):
            engine.register_udf("halve", lambda v: v / 2.0)
            # Separate streams: a hook-less subscriber forces its own
            # stream to materialize fully, so the plain query needs its
            # own stream to demonstrate masking continues elsewhere.
            engine.create_stream("readings", self.SCHEMA)
            engine.create_stream("readings2", self.SCHEMA)
            return [
                results_of(engine.query(
                    "SELECT tag_id FROM readings AS R "
                    "WHERE halve(R.pressure) < 0.2"
                )),
                results_of(engine.query(
                    "SELECT tag_id FROM readings2 AS R WHERE R.pressure < 0.4"
                )),
            ]

        batches = list(self._filter_workload(n=300))
        # Streams share the global clock: replay the same rows on the
        # second stream at strictly later timestamps.
        batches += [
            ("readings2", [(values, ts + 1000.0) for values, ts in rows])
            for _stream, rows in batches
        ]
        (udf_out, plain_out), native_engine = run_tiers(setup, batches)
        assert udf_out and plain_out
        if HAS_CC:
            stats = native_engine.native_state.stats()
            assert stats["lowering_fallbacks"] >= 1  # the UDF predicate
            assert stats["masked_batches"] > 0  # the plain one still masks


# ---------------------------------------------------------------------------
# Fallback chain: engines behave identically on a compiler-less host
# ---------------------------------------------------------------------------


class TestFallbackChain:
    QUERY = "SELECT tag_id FROM readings AS R WHERE R.pressure < 0.5"
    SCHEMA = "tag_id int, pressure float"

    def _run(self, **flags):
        engine = Engine(**flags)
        engine.create_stream("readings", self.SCHEMA)
        handle = engine.query(self.QUERY)
        schema = engine.streams.get("readings").schema
        rows = [({"tag_id": i, "pressure": (i * 7 % 10) / 10.0}, float(i))
                for i in range(50)]
        engine.push_columns("readings", ColumnBatch.from_rows(schema, rows))
        return engine, [(t.values, t.ts) for t in handle.results]

    def test_disable_env_masks_compiler_out(self, monkeypatch):
        monkeypatch.setenv(native_mod.DISABLE_ENV, "1")
        engine, out = self._run(native_admission=True)
        tier = engine.execution_tier()
        assert tier["requested"] == "native"
        assert tier["active"] == "vector"
        assert tier["compiler"] is None
        assert engine.native_state.stats()["kernels_built"] == 0
        _, reference = self._run()
        assert out == reference

    def test_monkeypatched_compiler_discovery(self, monkeypatch):
        monkeypatch.setattr(native_mod, "find_compiler", lambda: None)
        engine, out = self._run(native_admission=True)
        assert engine.execution_tier()["active"] == "vector"
        _, reference = self._run()
        assert out == reference

    def test_ccless_without_vector_tier_degrades_to_closure(self, monkeypatch):
        monkeypatch.setenv(native_mod.DISABLE_ENV, "1")
        engine, out = self._run(
            native_admission=True, vectorized_admission=False
        )
        assert engine.execution_tier()["active"] == "closure"
        _, reference = self._run()
        assert out == reference

    @requires_cc
    def test_tier_report_with_compiler(self):
        engine, _ = self._run(native_admission=True)
        tier = engine.execution_tier()
        assert tier["active"] == "native"
        assert tier["compiler"]
        assert tier["native"]["masked_batches"] > 0

    def test_sharded_and_multi_engine_tier_reports(self, monkeypatch):
        from repro.dsms.multi_engine import MultiQueryEngine
        from repro.dsms.sharding import ShardedEngine

        monkeypatch.setenv(native_mod.DISABLE_ENV, "1")
        sharded = ShardedEngine(n_shards=2, native_admission=True)
        assert sharded.execution_tier()["active"] == "vector"
        multi = MultiQueryEngine(native_admission=True)
        assert multi.execution_tier()["active"] == "vector"


# ---------------------------------------------------------------------------
# Compile cache: content-addressed .so reuse and corruption recovery
# ---------------------------------------------------------------------------


@requires_cc
class TestCompileCache:
    QUERY = (
        "SELECT tag_id FROM readings AS R "
        "WHERE R.pressure < 0.25 AND R.tag_id > 10"
    )
    SCHEMA = "tag_id int, pressure float"

    def _run_native(self):
        engine = Engine(native_admission=True)
        engine.create_stream("readings", self.SCHEMA)
        handle = engine.query(self.QUERY)
        schema = engine.streams.get("readings").schema
        rows = [({"tag_id": i, "pressure": (i * 3 % 100) / 100.0}, float(i))
                for i in range(80)]
        engine.push_columns("readings", ColumnBatch.from_rows(schema, rows))
        return engine, [(t.values, t.ts) for t in handle.results]

    def test_second_engine_reuses_cached_so(self):
        first, out_first = self._run_native()
        stats_first = first.native_state.stats()
        assert stats_first["kernels_built"] == 1
        assert stats_first["cache_hits"] == 0

        second, out_second = self._run_native()
        stats_second = second.native_state.stats()
        assert stats_second["kernels_built"] == 0
        assert stats_second["cache_hits"] == 1
        assert out_second == out_first

        cache_dir = os.environ[native_mod.CACHE_ENV]
        assert len(glob.glob(os.path.join(cache_dir, "*.so"))) == 1

    def test_corrupted_cache_entry_rebuilt(self):
        # Prime the cache from a *separate process*: corrupting a .so
        # that is still dlopen'ed by this process would invalidate live
        # mappings (and glibc caches handles by path), which is not the
        # scenario — on-disk corruption happens between runs.
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent(
            f"""
            from repro.dsms.columns import ColumnBatch
            from repro.dsms.engine import Engine

            engine = Engine(native_admission=True)
            engine.create_stream("readings", {self.SCHEMA!r})
            engine.query({self.QUERY!r})
            schema = engine.streams.get("readings").schema
            rows = [(
                {{"tag_id": i, "pressure": (i * 3 % 100) / 100.0}}, float(i)
            ) for i in range(10)]
            engine.push_columns(
                "readings", ColumnBatch.from_rows(schema, rows)
            )
            assert engine.native_state.stats()["kernels_built"] == 1
            """
        )
        subprocess.run(
            [sys.executable, "-c", script], check=True, env=os.environ.copy()
        )

        cache_dir = os.environ[native_mod.CACHE_ENV]
        (so_path,) = glob.glob(os.path.join(cache_dir, "*.so"))
        with open(so_path, "wb") as fh:
            fh.write(b"this is not a shared object")

        engine, out = self._run_native()
        stats = engine.native_state.stats()
        assert stats["kernels_built"] == 1  # rebuilt, not loaded
        # The rebuilt artifact replaced the corrupted entry in place.
        assert glob.glob(os.path.join(cache_dir, "*.so")) == [so_path]
        reference = Engine()
        reference.create_stream("readings", self.SCHEMA)
        handle = reference.query(self.QUERY)
        schema = reference.streams.get("readings").schema
        rows = [({"tag_id": i, "pressure": (i * 3 % 100) / 100.0}, float(i))
                for i in range(80)]
        reference.push_columns(
            "readings", ColumnBatch.from_rows(schema, rows)
        )
        assert out == [(t.values, t.ts) for t in handle.results]

    def test_distinct_predicates_get_distinct_kernels(self):
        self._run_native()
        other = Engine(native_admission=True)
        other.create_stream("readings", self.SCHEMA)
        other.query("SELECT tag_id FROM readings AS R WHERE R.pressure > 0.9")
        schema = other.streams.get("readings").schema
        other.push_columns(
            "readings",
            ColumnBatch.from_rows(schema, [({"tag_id": 1, "pressure": 0.95},
                                            0.0)]),
        )
        assert other.native_state.stats()["kernels_built"] == 1
        cache_dir = os.environ[native_mod.CACHE_ENV]
        assert len(glob.glob(os.path.join(cache_dir, "*.so"))) == 2


# ---------------------------------------------------------------------------
# Lowering unit checks
# ---------------------------------------------------------------------------


class TestLowering:
    SCHEMA = Schema.parse("tag_id int, pressure float, loc str")

    def _terms(self, text):
        from repro.core.language.parser import parse_expression
        from repro.dsms.expressions import And

        predicate = parse_expression(text)
        if isinstance(predicate, And):
            return list(predicate.operands)
        return [predicate]

    def test_deterministic_source_enables_cache_sharing(self):
        terms = self._terms("R.pressure < 0.5 AND R.loc = 'dock'")
        spec_a = lower_kernel(terms, self.SCHEMA, "r", "strict")
        spec_b = lower_kernel(terms, self.SCHEMA, "r", "strict")
        assert spec_a is not None and spec_b is not None
        assert translation_unit([spec_a]) == translation_unit([spec_b])

    def test_strict_and_lenient_differ_only_in_admit(self):
        terms = self._terms("R.pressure < 0.5")
        strict = lower_kernel(terms, self.SCHEMA, "r", "strict")
        lenient = lower_kernel(terms, self.SCHEMA, "r", "lenient")
        assert strict.source != lenient.source

    def test_udf_term_bails(self):
        from repro.dsms.expressions import Column, FunctionCall, BinaryOp, Literal

        call = FunctionCall("halve", [Column("pressure", "r")])
        term = BinaryOp("<", call, Literal(0.2))
        assert lower_kernel([term], self.SCHEMA, "r", "strict") is None

    def test_unknown_column_bails(self):
        terms = self._terms("R.bogus < 0.5")
        assert lower_kernel(terms, self.SCHEMA, "r", "strict") is None

    @requires_cc
    def test_native_state_counts_runtime_fallback(self):
        """A column value outside int64 range at runtime abandons that
        batch (never wrong output) and increments runtime_fallbacks."""
        from repro.dsms.native import native_admission_mask

        state = NativeState()
        terms = self._terms("R.tag_id > 5")
        mask = native_admission_mask(terms, self.SCHEMA, "r", "strict", state)
        assert mask is not None
        good = mask([[1, 7, None], [0.0, 0.0, 0.0], ["a", "b", "c"]],
                    [0.0, 1.0, 2.0], 3)
        assert list(good) == [0, 1, 0]
        over = mask([[1, 1 << 80], [0.0, 0.0], ["a", "b"]], [0.0, 1.0], 2)
        assert over is None
        assert state.stats()["runtime_fallbacks"] == 1
