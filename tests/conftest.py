"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dsms import Engine


@pytest.fixture
def engine() -> Engine:
    """A fresh engine per test."""
    return Engine()


@pytest.fixture
def readings_engine() -> Engine:
    """An engine with the paper's canonical `readings` stream declared."""
    eng = Engine()
    eng.create_stream("readings", "reader_id str, tag_id str, read_time float")
    return eng


@pytest.fixture
def four_streams_engine() -> Engine:
    """An engine with the Example 6 quality-check streams C1..C4."""
    eng = Engine()
    for name in ("c1", "c2", "c3", "c4"):
        eng.create_stream(name, "readerid str, tagid str, tagtime float")
    return eng


def push_simple(engine: Engine, stream: str, ts: float, **fields) -> None:
    """Push a tuple with defaulted fields onto a (tagid, tagtime) stream."""
    row = {"tagid": "x", "tagtime": ts}
    row.update(fields)
    engine.push(stream, row, ts=ts)
