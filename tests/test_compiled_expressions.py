"""Differential tests: ``Expression.compile()`` closures vs. ``eval()`` walks.

The compiled execution path must be observationally identical to the
interpreted tree walk — same values, same SQL three-valued logic around
NULL, same runtime errors.  These tests run the *same* expression through
both paths over a grid of environments (including NULL-heavy ones) and
assert agreement, plus a seeded random-expression sweep that acts as a
lightweight property test.
"""

from __future__ import annotations

import random

import pytest

from repro.core.language.parser import parse_expression
from repro.dsms.errors import EslRuntimeError
from repro.dsms.expressions import (
    And,
    Between,
    BinaryOp,
    Case,
    Column,
    CompileContext,
    Env,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    _ConstFn,
)
from repro.dsms.functions import default_functions
from repro.dsms.schema import Schema
from repro.dsms.tuples import Tuple

SCHEMA = Schema.parse("tagid str, serial int, tagtime float")
FUNCTIONS = default_functions()

# Positional lowering on; positional lowering off (no schema knowledge).
CTX_SCHEMA = CompileContext(FUNCTIONS, {"r": SCHEMA})
CTX_BARE = CompileContext(FUNCTIONS)


def make_env(tagid="20.1.5001", serial=5001, tagtime=3.0):
    tup = Tuple(SCHEMA, [tagid, serial, tagtime], tagtime if tagtime is not None else 0.0)
    return Env({"r": tup}, FUNCTIONS)


# A grid of environments covering present values, NULL fields, and
# boundary numbers.
ENVIRONMENTS = [
    make_env(),
    make_env(tagid=None),
    make_env(serial=None),
    make_env(tagid=None, serial=None),
    make_env(tagid="", serial=0, tagtime=0.0),
    make_env(tagid="20.999.1", serial=-17, tagtime=1e9),
]


def outcome(fn, env):
    """Evaluate, capturing either the value or the concrete error type.

    Comparisons of incomparable types surface as EslRuntimeError; a few
    nodes (unary minus on a string, say) let Python's TypeError through in
    both paths — what matters is that interpreted and compiled agree.
    """
    try:
        return ("value", fn(env))
    except (EslRuntimeError, TypeError) as exc:
        return ("error", type(exc))


def assert_agreement(expr, envs=ENVIRONMENTS):
    """eval() and compile() under both contexts agree on every env."""
    for ctx in (CTX_SCHEMA, CTX_BARE):
        compiled = expr.compile(ctx)
        for env in envs:
            interpreted = outcome(expr.eval, env)
            fast = outcome(compiled, env)
            assert fast == interpreted, (
                f"{expr!r}: compiled {fast} != interpreted {interpreted}"
            )


class TestParsedExpressions:
    """End-to-end texts through the real parser, both paths."""

    @pytest.mark.parametrize("text", [
        "r.serial > 5000",
        "r.serial > 5000 AND r.tagid LIKE '20.%'",
        "r.serial + 1 = 5002 OR r.serial - 1 = 5000",
        "NOT (r.serial BETWEEN 1 AND 10)",
        "r.tagid IN ('20.1.5001', 'x', 'y')",
        "r.tagid NOT IN ('a', 'b')",
        "r.tagid IS NULL",
        "r.tagid IS NOT NULL",
        "r.serial / 0 IS NULL",          # division by zero -> NULL
        "r.serial % 2 = 1",
        "r.tagid || '-suffix' = '20.1.5001-suffix'",
        "upper(r.tagid) = lower(r.tagid)",
        "length(r.tagid) > 3",
        "coalesce(r.tagid, 'missing') = 'missing'",
        "extract_serial(r.tagid) > 5000",
        "CASE WHEN r.serial > 0 THEN 'pos' ELSE 'neg' END = 'pos'",
        "CASE WHEN r.serial > 9000 THEN 1 END IS NULL",
        "-r.serial < 0",
        "r.serial > 100 AND r.tagtime < 100.0 AND r.tagid <> ''",
        "r.serial > 100 OR r.tagid = 'nope' OR r.tagtime = 3.0",
    ])
    def test_parsed_agreement(self, text):
        assert_agreement(parse_expression(text))

    @pytest.mark.parametrize("text", [
        # Three-valued logic with explicit NULL literals.
        "NULL = NULL",
        "NULL IS NULL",
        "NOT NULL",
        "1 = NULL OR TRUE",
        "1 = NULL AND FALSE",
        "NULL BETWEEN 1 AND 2",
        "1 IN (2, NULL)",        # unknown, not false
        "3 IN (3, NULL)",        # membership beats the NULL
    ])
    def test_null_literals_agreement(self, text):
        assert_agreement(parse_expression(text))


class TestKleeneShortCircuit:
    """Compiled AND/OR short-circuit exactly like the interpreter."""

    def test_and_false_short_circuits_error_operand(self):
        # eval() returns on the first False without touching the division
        # error; the compiled conjunction must do the same.
        expr = And(Literal(False), BinaryOp("<", Literal("a"), Literal(1)))
        assert_agreement(expr)
        assert expr.compile(CTX_SCHEMA)(make_env()) is False

    def test_or_true_short_circuits_error_operand(self):
        expr = Or(Literal(True), BinaryOp("<", Literal("a"), Literal(1)))
        assert_agreement(expr)
        assert expr.compile(CTX_SCHEMA)(make_env()) is True

    def test_and_null_result_still_checks_later_false(self):
        # NULL AND ... FALSE is False, not NULL: false dominates.
        expr = And(Literal(None), Column("serial", "r"), Literal(False))
        for env in ENVIRONMENTS:
            assert expr.eval(env) is False
        assert_agreement(expr)

    def test_error_operand_after_true_still_raises(self):
        expr = And(Literal(True), BinaryOp("<", Literal("a"), Literal(1)))
        with pytest.raises(EslRuntimeError):
            expr.eval(make_env())
        with pytest.raises(EslRuntimeError):
            expr.compile(CTX_SCHEMA)(make_env())


class TestConstantFolding:
    def test_arithmetic_folds_to_constant(self):
        fn = parse_expression("1 + 2 * 3").compile(CTX_SCHEMA)
        assert isinstance(fn, _ConstFn)
        assert fn.value == 7

    def test_logic_folds_to_constant(self):
        fn = parse_expression("TRUE AND 2 > 1").compile(CTX_SCHEMA)
        assert isinstance(fn, _ConstFn)
        assert fn.value is True

    def test_folding_defers_errors_to_call_time(self):
        # 'a' < 1 is a constant expression whose evaluation raises; compile
        # must not raise, and the closure must raise like eval() does.
        expr = BinaryOp("<", Literal("a"), Literal(1))
        fn = expr.compile(CTX_SCHEMA)
        assert not isinstance(fn, _ConstFn)
        with pytest.raises(EslRuntimeError):
            fn(Env())

    def test_column_blocks_folding(self):
        fn = parse_expression("r.serial + 1").compile(CTX_SCHEMA)
        assert not isinstance(fn, _ConstFn)
        assert fn(make_env(serial=41)) == 42


class TestPositionalColumns:
    def test_schema_context_uses_positions(self):
        expr = Column("serial", "r")
        assert expr.compile(CTX_SCHEMA)(make_env(serial=7)) == 7
        assert expr.compile(CTX_BARE)(make_env(serial=7)) == 7

    def test_parent_scope_visible_to_compiled_columns(self):
        outer = make_env(serial=99)
        inner = outer.child({"s": Tuple(SCHEMA, ["x", 1, 0.0], 0.0)})
        expr = Column("serial", "r")
        for ctx in (CTX_SCHEMA, CTX_BARE):
            assert expr.compile(ctx)(inner) == expr.eval(inner) == 99

    def test_bare_column_agreement(self):
        expr = Column("serial", None)
        assert_agreement(expr)


class TestRandomizedSweep:
    """Seeded random expression trees through both paths.

    A light property test: ~300 random trees over the three columns and a
    pool of constants (including NULL), evaluated on every environment in
    the grid under both compile contexts.
    """

    LEAF_VALUES = [None, True, False, 0, 1, -3, 2.5, "20.1.5001", "", "zz"]
    COLUMNS = ["tagid", "serial", "tagtime"]
    CMP_OPS = ["=", "<>", "<", "<=", ">", ">="]
    ARITH_OPS = ["+", "-", "*", "/", "%", "||"]

    def random_tree(self, rng, depth):
        if depth <= 0 or rng.random() < 0.3:
            if rng.random() < 0.4:
                alias = "r" if rng.random() < 0.8 else None
                return Column(rng.choice(self.COLUMNS), alias)
            return Literal(rng.choice(self.LEAF_VALUES))
        kind = rng.randrange(8)
        sub = lambda: self.random_tree(rng, depth - 1)
        if kind == 0:
            return BinaryOp(rng.choice(self.CMP_OPS), sub(), sub())
        if kind == 1:
            return BinaryOp(rng.choice(self.ARITH_OPS), sub(), sub())
        if kind == 2:
            return And(*[sub() for _ in range(rng.randint(2, 3))])
        if kind == 3:
            return Or(*[sub() for _ in range(rng.randint(2, 3))])
        if kind == 4:
            return Not(sub())
        if kind == 5:
            return IsNull(sub(), negate=rng.random() < 0.5)
        if kind == 6:
            return Between(sub(), sub(), sub(), negate=rng.random() < 0.5)
        return Negate(sub())

    def test_random_trees_agree(self):
        rng = random.Random(20070415)
        for _ in range(300):
            expr = self.random_tree(rng, depth=3)
            assert_agreement(expr)

    def test_random_in_lists_agree(self):
        rng = random.Random(77)
        for _ in range(100):
            member = self.random_tree(rng, depth=1)
            items = [Literal(rng.choice(self.LEAF_VALUES))
                     for _ in range(rng.randint(1, 4))]
            expr = InList(member, items, negate=rng.random() < 0.5)
            assert_agreement(expr)


class TestFunctionsAndCase:
    def test_function_rebinding_seen_by_compiled_closure(self):
        # The compiled closure reads the live registry mapping per call.
        functions = dict(FUNCTIONS)
        expr = FunctionCall("double", [Column("serial", "r")])
        ctx = CompileContext(functions, {"r": SCHEMA})
        functions["double"] = lambda v: v * 2
        fn = expr.compile(ctx)
        env = Env({"r": Tuple(SCHEMA, ["t", 21, 0.0], 0.0)}, functions)
        assert fn(env) == 42
        functions["double"] = lambda v: v * 10
        assert fn(env) == 210

    def test_case_with_null_conditions(self):
        expr = Case(
            [(BinaryOp("=", Column("tagid", "r"), Literal("x")), Literal(1)),
             (IsNull(Column("serial", "r")), Literal(2))],
            default=Literal(3),
        )
        assert_agreement(expr)

    def test_like_null_and_patterns(self):
        for pattern in ["20.%", "%.5001", "2_.1.5001", "nomatch%"]:
            expr = Like(Column("tagid", "r"), Literal(pattern))
            assert_agreement(expr)
