"""Unit tests for the RFID reader models and workload generators."""

import random

import pytest

from repro.rfid.readers import ReaderModel, Reading, merge_readings, readings_to_trace
from repro.rfid.workloads import (
    dedup_workload,
    door_workload,
    epc_stream_workload,
    lab_workflow_workload,
    location_workload,
    packing_workload,
    quality_check_workload,
    uniform_sequence_workload,
)


class TestReaderModel:
    def test_dwell_produces_duplicates(self):
        reader = ReaderModel("r1", read_interval=0.25)
        readings = reader.observe("t1", 0.0, 1.0)
        assert len(readings) == 5  # 0, .25, .5, .75, 1.0
        assert all(r.reader_id == "r1" for r in readings)

    def test_single_read(self):
        reader = ReaderModel("r1")
        readings = reader.observe("t1", 3.0)
        assert len(readings) == 1
        assert readings[0].ts == 3.0

    def test_miss_rate_one_drops_everything(self):
        reader = ReaderModel("r1", miss_rate=1.0)
        assert reader.observe("t1", 0.0, 1.0) == []

    def test_drop_rate_keeps_first_report(self):
        reader = ReaderModel("r1", drop_rate=1.0, rng=random.Random(0))
        readings = reader.observe("t1", 0.0, 2.0)
        assert len(readings) == 1  # only the first survives

    def test_jitter_bounded(self):
        reader = ReaderModel("r1", jitter=0.1, rng=random.Random(1))
        readings = reader.observe("t1", 5.0, 6.0)
        for nominal, reading in zip([5.0, 5.25, 5.5, 5.75, 6.0], readings):
            assert abs(reading.ts - nominal) <= 0.1 + 1e-9

    def test_output_sorted(self):
        reader = ReaderModel("r1", jitter=0.2, rng=random.Random(2))
        readings = reader.observe("t1", 0.0, 3.0)
        assert readings == sorted(readings, key=lambda r: r.ts)

    def test_ghost_reads(self):
        reader = ReaderModel("r1", ghost_rate=1.0, rng=random.Random(3))
        readings = reader.observe("20.1.5001", 0.0)
        assert len(readings) == 2
        assert readings[1].tag_id != "20.1.5001"

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            ReaderModel("r", miss_rate=1.5)
        with pytest.raises(ValueError):
            ReaderModel("r", read_interval=0.0)

    def test_merge_sorted(self):
        a = [Reading("r1", "t", 1.0), Reading("r1", "t", 3.0)]
        b = [Reading("r2", "t", 2.0)]
        merged = merge_readings([a, b])
        assert [r.ts for r in merged] == [1.0, 2.0, 3.0]

    def test_readings_to_trace(self):
        trace = list(readings_to_trace([Reading("r1", "t1", 2.0)], "s"))
        assert trace == [
            ("s", {"reader_id": "r1", "tag_id": "t1", "read_time": 2.0}, 2.0)
        ]


class TestWorkloadShapes:
    def test_traces_time_sorted(self):
        for workload in (
            dedup_workload(n_tags=5),
            location_workload(n_tags=3),
            epc_stream_workload(n_readings=50),
            packing_workload(n_cases=5),
            lab_workflow_workload(n_runs=10),
            quality_check_workload(n_products=10),
            door_workload(n_events=10),
            uniform_sequence_workload(n_tuples=50),
        ):
            stamps = [ts for __, __, ts in workload.trace]
            assert stamps == sorted(stamps)

    def test_workloads_deterministic(self):
        assert dedup_workload(seed=5).trace == dedup_workload(seed=5).trace
        assert packing_workload(seed=5).trace == packing_workload(seed=5).trace

    def test_different_seeds_differ(self):
        assert door_workload(seed=1).trace != door_workload(seed=2).trace


class TestDedupWorkload:
    def test_truth_counts_presences(self):
        workload = dedup_workload(n_tags=4, presences_per_tag=3)
        assert len(workload.truth) == 12

    def test_duplicates_present(self):
        workload = dedup_workload(n_tags=2, presences_per_tag=1, dwell=1.0,
                                  read_interval=0.25)
        assert len(workload.trace) > len(workload.truth)


class TestPackingWorkload:
    def test_truth_maps_cases_to_products(self):
        workload = packing_workload(n_cases=6, products_per_case=(2, 4))
        assert len(workload.truth) == 6
        for products in workload.truth.values():
            assert 2 <= len(products) <= 4

    def test_intra_gap_below_threshold(self):
        workload = packing_workload(n_cases=4, intra_gap=0.4)
        product_times = {}
        for stream, row, ts in workload.trace:
            if stream == "r1":
                product_times.setdefault(row["tagid"], ts)
        for case, products in workload.truth.items():
            stamps = sorted(product_times[p] for p in products)
            gaps = [b - a for a, b in zip(stamps, stamps[1:])]
            assert all(gap <= 1.0 for gap in gaps)

    def test_intra_gap_validation(self):
        with pytest.raises(ValueError):
            packing_workload(intra_gap=1.5)

    def test_case_reading_present_per_case(self):
        workload = packing_workload(n_cases=5)
        case_tags = {row["tagid"] for s, row, __ in workload.trace if s == "r2"}
        assert case_tags == set(workload.truth)


class TestLabWorkload:
    def test_counts_add_up(self):
        workload = lab_workflow_workload(n_runs=40)
        counts = workload.truth["counts"]
        assert sum(counts.values()) == 40
        assert workload.truth["violations"] == 40 - counts["ok"]

    def test_zero_violation_rate(self):
        workload = lab_workflow_workload(n_runs=20, violation_rate=0.0)
        assert workload.truth["violations"] == 0


class TestDoorWorkload:
    def test_truth_partitions(self):
        workload = door_workload(n_events=50)
        truth = workload.truth
        assert set(truth) == {"thefts", "lone_persons", "horizon"}
        assert all(t.startswith("item") for t in truth["thefts"])
        assert all(p.startswith("person") for p in truth["lone_persons"])

    def test_events_well_separated(self):
        workload = door_workload(n_events=20, tau=60.0)
        # Consecutive *events* are > 2 tau apart, so windows never overlap
        # across events (escort pairs are within one event).
        stamps = [ts for __, __, ts in workload.trace]
        assert stamps[-1] > 20 * 120


class TestQualityWorkload:
    def test_completed_have_four_stamps(self):
        workload = quality_check_workload(n_products=30)
        for stamps in workload.truth.values():
            assert len(stamps) == 4
            assert stamps == sorted(stamps)

    def test_dropout_reduces_completed(self):
        none = quality_check_workload(n_products=50, dropout_rate=0.0)
        some = quality_check_workload(n_products=50, dropout_rate=0.8)
        assert len(none.truth) == 50
        assert len(some.truth) < 50


class TestEpcWorkload:
    def test_truth_counts_match_trace(self):
        workload = epc_stream_workload(n_readings=300)
        from repro.epc import EpcPattern

        pattern = EpcPattern("20.*.[5000-9999]")
        manual = sum(
            1 for __, row, __ in workload.trace if pattern.matches(row["tid"])
        )
        assert workload.truth["pattern_count"] == manual
