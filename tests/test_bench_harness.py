"""Unit tests for the benchmark harness (tables, timing, metrics)."""

import time

import pytest

from repro.bench import (
    Accuracy,
    ResultTable,
    Timed,
    containment_accuracy,
    summarize_rows,
    sweep,
    throughput,
)


class TestResultTable:
    def test_render_aligns_columns(self):
        table = ResultTable("demo", ["name", "value"])
        table.add("short", 1)
        table.add("a-much-longer-name", 22222)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        header, rule, *rows = lines[1:]
        assert len(set(len(line) for line in [header, rule])) == 1
        assert rows[0].startswith("short")

    def test_arity_checked(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_float_formatting(self):
        table = ResultTable("t", ["v"])
        table.add(0.0)
        table.add(0.1234567)
        table.add(3.14159)
        table.add(123456.0)
        cells = [row[0] for row in table.rows]
        assert cells == ["0", "0.1235", "3.14", "123,456"]

    def test_bool_formatting(self):
        table = ResultTable("t", ["ok"])
        table.add(True)
        table.add(False)
        assert [row[0] for row in table.rows] == ["yes", "no"]

    def test_print(self, capsys):
        table = ResultTable("t", ["a"])
        table.add(1)
        table.print()
        assert "== t ==" in capsys.readouterr().out

    def test_sweep_populates(self):
        table = ResultTable("t", ["x", "double"])
        sweep([1, 2, 3], lambda x: (x, 2 * x), table)
        assert len(table.rows) == 3


class TestTimedAndMetrics:
    def test_timed_measures(self):
        with Timed() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_throughput(self):
        assert throughput(100, 2.0) == 50.0
        assert throughput(100, 0.0) == 0.0

    def test_accuracy_from_sets(self):
        accuracy = Accuracy.from_sets({"a", "b", "x"}, {"a", "b", "c"})
        assert accuracy.tp == 2 and accuracy.fp == 1 and accuracy.fn == 1
        assert accuracy.precision == pytest.approx(2 / 3)
        assert accuracy.recall == pytest.approx(2 / 3)
        assert not accuracy.exact

    def test_accuracy_empty_sets(self):
        accuracy = Accuracy.from_sets(set(), set())
        assert accuracy.precision == 1.0
        assert accuracy.recall == 1.0
        assert accuracy.f1 == 2.0 * 1 * 1 / 2
        assert accuracy.exact

    def test_f1_zero_when_nothing_right(self):
        accuracy = Accuracy.from_sets({"x"}, {"y"})
        assert accuracy.f1 == 0.0

    def test_containment_accuracy_requires_full_sets(self):
        detected = [("case1", ["p1", "p2"]), ("case2", ["p3"])]
        truth = {"case1": ["p1", "p2"], "case2": ["p3", "p4"]}
        accuracy = containment_accuracy(detected, truth)
        assert accuracy.tp == 1  # case2's item set differs
        assert accuracy.fp == 1 and accuracy.fn == 1

    def test_summarize_rows(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        assert summarize_rows(rows, ["a", "b"]) == [(1, 2), (3, None)]


class TestPercentile:
    def test_single_sample(self):
        from repro.bench import percentile
        assert percentile([42.0], 0) == 42.0
        assert percentile([42.0], 99) == 42.0

    def test_interpolation(self):
        from repro.bench import percentile
        assert percentile([1.0, 2.0], 50) == 1.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_order_independent(self):
        from repro.bench import percentile
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.5

    def test_p99_near_max(self):
        from repro.bench import percentile
        samples = [float(i) for i in range(100)]
        assert 98.0 <= percentile(samples, 99) <= 99.0

    def test_validation(self):
        import pytest as _pytest
        from repro.bench import percentile
        with _pytest.raises(ValueError):
            percentile([], 50)
        with _pytest.raises(ValueError):
            percentile([1.0], 101)


class TestBenchReport:
    def test_writes_named_json(self, tmp_path):
        import json
        from repro.bench import BenchReport
        report = BenchReport("demo", meta={"reps": 3})
        report.add_experiment(
            "arm-a", n_tuples=1000, seconds=0.5,
            latencies_s=[0.001, 0.002, 0.004],
            state_size=17, params={"mode": "fast"}, rows=12,
        )
        path = report.write(str(tmp_path))
        assert path.endswith("BENCH_demo.json")
        payload = json.loads(open(path).read())
        assert payload["schema_version"] == 1
        assert payload["name"] == "demo"
        assert payload["meta"] == {"reps": 3}
        (entry,) = payload["experiments"]
        assert entry["label"] == "arm-a"
        assert entry["throughput_tuples_per_s"] == 2000.0
        assert entry["state_size"] == 17
        assert entry["params"] == {"mode": "fast"}
        assert entry["rows"] == 12
        assert entry["latency_us"]["samples"] == 3
        assert entry["latency_us"]["p50"] == 2000.0  # 2 ms in µs
        assert entry["latency_us"]["max"] == 4000.0

    def test_latency_block_optional(self, tmp_path):
        import json
        from repro.bench import BenchReport
        report = BenchReport("nolat")
        report.add_experiment("a", n_tuples=10, seconds=0.0)
        path = report.write(str(tmp_path))
        (entry,) = json.loads(open(path).read())["experiments"]
        assert "latency_us" not in entry
        assert entry["throughput_tuples_per_s"] == 0.0

    def test_measure_latencies_counts(self):
        from repro.bench import measure_latencies
        calls = []
        samples = measure_latencies(lambda: calls.append(1), 5)
        assert len(samples) == 5 and len(calls) == 5
        assert all(s >= 0.0 for s in samples)
