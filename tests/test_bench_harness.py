"""Unit tests for the benchmark harness (tables, timing, metrics)."""

import time

import pytest

from repro.bench import (
    Accuracy,
    ResultTable,
    Timed,
    containment_accuracy,
    summarize_rows,
    sweep,
    throughput,
)


class TestResultTable:
    def test_render_aligns_columns(self):
        table = ResultTable("demo", ["name", "value"])
        table.add("short", 1)
        table.add("a-much-longer-name", 22222)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        header, rule, *rows = lines[1:]
        assert len(set(len(line) for line in [header, rule])) == 1
        assert rows[0].startswith("short")

    def test_arity_checked(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_float_formatting(self):
        table = ResultTable("t", ["v"])
        table.add(0.0)
        table.add(0.1234567)
        table.add(3.14159)
        table.add(123456.0)
        cells = [row[0] for row in table.rows]
        assert cells == ["0", "0.1235", "3.14", "123,456"]

    def test_bool_formatting(self):
        table = ResultTable("t", ["ok"])
        table.add(True)
        table.add(False)
        assert [row[0] for row in table.rows] == ["yes", "no"]

    def test_print(self, capsys):
        table = ResultTable("t", ["a"])
        table.add(1)
        table.print()
        assert "== t ==" in capsys.readouterr().out

    def test_sweep_populates(self):
        table = ResultTable("t", ["x", "double"])
        sweep([1, 2, 3], lambda x: (x, 2 * x), table)
        assert len(table.rows) == 3


class TestTimedAndMetrics:
    def test_timed_measures(self):
        with Timed() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_throughput(self):
        assert throughput(100, 2.0) == 50.0
        assert throughput(100, 0.0) == 0.0

    def test_accuracy_from_sets(self):
        accuracy = Accuracy.from_sets({"a", "b", "x"}, {"a", "b", "c"})
        assert accuracy.tp == 2 and accuracy.fp == 1 and accuracy.fn == 1
        assert accuracy.precision == pytest.approx(2 / 3)
        assert accuracy.recall == pytest.approx(2 / 3)
        assert not accuracy.exact

    def test_accuracy_empty_sets(self):
        accuracy = Accuracy.from_sets(set(), set())
        assert accuracy.precision == 1.0
        assert accuracy.recall == 1.0
        assert accuracy.f1 == 2.0 * 1 * 1 / 2
        assert accuracy.exact

    def test_f1_zero_when_nothing_right(self):
        accuracy = Accuracy.from_sets({"x"}, {"y"})
        assert accuracy.f1 == 0.0

    def test_containment_accuracy_requires_full_sets(self):
        detected = [("case1", ["p1", "p2"]), ("case2", ["p3"])]
        truth = {"case1": ["p1", "p2"], "case2": ["p3", "p4"]}
        accuracy = containment_accuracy(detected, truth)
        assert accuracy.tp == 1  # case2's item set differs
        assert accuracy.fp == 1 and accuracy.fn == 1

    def test_summarize_rows(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        assert summarize_rows(rows, ["a", "b"]) == [(1, 2), (3, None)]
