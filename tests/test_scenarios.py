"""Integration tests: packaged scenarios detect their ground truth.

These are the accuracy claims of EXPERIMENTS.md, asserted as tests: each
paper scenario, run on a simulated workload, must recover the ground truth
exactly (the workloads are noise-free by default; noisy variants are
exercised in the benchmarks).
"""

from collections import defaultdict

import pytest

from repro.bench import Accuracy, containment_accuracy
from repro.rfid import (
    build_containment,
    build_dedup,
    build_door,
    build_epc_aggregation,
    build_lab_workflow,
    build_location,
    build_quality_check,
    dedup_workload,
    door_workload,
    epc_stream_workload,
    lab_workflow_workload,
    location_workload,
    packing_workload,
    quality_check_workload,
)


class TestDedupScenario:
    def test_exact_recovery(self):
        workload = dedup_workload(n_tags=20, presences_per_tag=4)
        scenario = build_dedup(workload).feed()
        detected = {
            (row["tag_id"], row["read_time"]) for row in scenario.rows()
        }
        truth = set(workload.truth)
        accuracy = Accuracy.from_sets(detected, truth)
        assert accuracy.exact, accuracy

    def test_compression_ratio(self):
        workload = dedup_workload(n_tags=10, dwell=1.0, read_interval=0.2)
        scenario = build_dedup(workload).feed()
        assert len(scenario.rows()) < len(workload.trace) / 3


class TestLocationScenario:
    def test_movement_history_matches(self):
        workload = location_workload(n_tags=8)
        scenario = build_location(workload).feed()
        table = scenario.engine.table("object_movement")
        detected = {
            (row["tagid"], row["location"], row["start_time"])
            for row in table.scan()
        }
        assert detected == set(workload.truth)


class TestEpcScenario:
    def test_final_count_matches_paper_semantics(self):
        workload = epc_stream_workload(n_readings=800)
        scenario = build_epc_aggregation(workload).feed()
        rows = scenario.rows()
        final = rows[-1]["count_tid"] if rows else 0
        assert final == workload.truth["paper_count"]


class TestContainmentScenario:
    def test_aggregated_counts(self):
        workload = packing_workload(n_cases=25)
        scenario = build_containment(workload).feed()
        detected = {
            row["tagid"]: row["count_R1"] for row in scenario.rows()
        }
        expected = {case: len(items) for case, items in workload.truth.items()}
        assert detected == expected

    def test_per_item_assignment_exact(self):
        workload = packing_workload(n_cases=25)
        scenario = build_containment(workload, per_item=True).feed()
        grouped = defaultdict(list)
        for row in scenario.rows():
            grouped[row["tagid_2"]].append(row["tagid"])
        accuracy = containment_accuracy(list(grouped.items()), workload.truth)
        assert accuracy.exact, accuracy

    def test_without_overlap(self):
        workload = packing_workload(n_cases=10, overlap_next_case=False)
        scenario = build_containment(workload).feed()
        assert len(scenario.rows()) == 10


class TestLabScenario:
    def test_violation_count_matches(self):
        workload = lab_workflow_workload(n_runs=50, violation_rate=0.4)
        scenario = build_lab_workflow(workload).feed()
        assert len(scenario.rows()) == workload.truth["violations"]

    def test_clevel_variant_equivalent(self):
        workload = lab_workflow_workload(n_runs=50, violation_rate=0.4)
        exception = build_lab_workflow(workload).feed()
        clevel = build_lab_workflow(
            lab_workflow_workload(n_runs=50, violation_rate=0.4),
            use_clevel=True,
        ).feed()
        assert len(exception.rows()) == len(clevel.rows())

    def test_clean_runs_silent(self):
        workload = lab_workflow_workload(n_runs=30, violation_rate=0.0)
        scenario = build_lab_workflow(workload).feed()
        assert scenario.rows() == []


class TestQualityScenario:
    def test_completed_products_detected(self):
        workload = quality_check_workload(n_products=60, dropout_rate=0.2)
        scenario = build_quality_check(workload).feed()
        detected = {row["tagid"] for row in scenario.rows()}
        assert detected == set(workload.truth)

    def test_timestamps_reported(self):
        workload = quality_check_workload(n_products=20, dropout_rate=0.0)
        scenario = build_quality_check(workload).feed()
        for row in scenario.rows():
            stamps = workload.truth[row["tagid"]]
            assert [row["tagtime"], row["tagtime_2"], row["tagtime_3"],
                    row["tagtime_4"]] == stamps

    def test_unrestricted_mode_equivalent_here(self):
        # With per-tag equality joins, UNRESTRICTED produces the same matches
        # as RECENT on this workload (one pass per product).
        workload = quality_check_workload(n_products=25)
        recent = build_quality_check(workload).feed()
        unrestricted = build_quality_check(
            quality_check_workload(n_products=25), mode=None
        ).feed()
        assert {r["tagid"] for r in recent.rows()} == {
            r["tagid"] for r in unrestricted.rows()
        }


class TestDoorScenario:
    def test_theft_detection_exact(self):
        workload = door_workload(n_events=60)
        scenario = build_door(workload).feed(
            advance_to=workload.truth["horizon"]
        )
        detected = {row["tagid"] for row in scenario.rows()}
        assert detected == set(workload.truth["thefts"])

    def test_literal_paper_query_finds_lone_persons(self):
        workload = door_workload(n_events=60)
        scenario = build_door(workload, theft_variant=False).feed(
            advance_to=workload.truth["horizon"]
        )
        detected = {row["tagid"] for row in scenario.rows()}
        assert detected == set(workload.truth["lone_persons"])

    def test_feed_idempotent(self):
        workload = door_workload(n_events=10)
        scenario = build_door(workload)
        scenario.feed(advance_to=workload.truth["horizon"])
        count = len(scenario.rows())
        scenario.feed()  # second feed is a no-op
        assert len(scenario.rows()) == count
