"""Unit tests for the EPC substrate: codes and ALE patterns."""

import random

import pytest

from repro.dsms.errors import EpcFormatError
from repro.epc import (
    EpcCode,
    EpcPattern,
    generate_epcs,
    is_valid_epc,
    pattern_to_sql,
)


class TestEpcCode:
    def test_parse_and_str_roundtrip(self):
        code = EpcCode.parse("20.17.5001")
        assert (code.company, code.product, code.serial) == (20, 17, 5001)
        assert str(code) == "20.17.5001"

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(EpcFormatError):
            EpcCode.parse("20.17")
        with pytest.raises(EpcFormatError):
            EpcCode.parse("20.17.1.2")

    def test_parse_rejects_non_integer(self):
        with pytest.raises(EpcFormatError):
            EpcCode.parse("20.xx.5001")

    def test_range_validation(self):
        with pytest.raises(EpcFormatError):
            EpcCode(-1, 0, 0)
        with pytest.raises(EpcFormatError):
            EpcCode(0, 1 << 24, 0)
        with pytest.raises(EpcFormatError):
            EpcCode(0, 0, 1 << 36)

    def test_gid96_roundtrip(self):
        code = EpcCode(20, 17, 5001)
        assert EpcCode.from_gid96(code.to_gid96()) == code

    def test_gid96_header(self):
        value = EpcCode(1, 2, 3).to_gid96()
        assert value >> 88 == 0x35

    def test_gid96_rejects_wrong_header(self):
        with pytest.raises(EpcFormatError):
            EpcCode.from_gid96(0x36 << 88)

    def test_gid96_rejects_out_of_range(self):
        with pytest.raises(EpcFormatError):
            EpcCode.from_gid96(1 << 96)

    def test_uri_roundtrip(self):
        code = EpcCode(20, 17, 5001)
        assert code.to_uri() == "urn:epc:id:gid:20.17.5001"
        assert EpcCode.from_uri(code.to_uri()) == code

    def test_uri_rejects_other_schemes(self):
        with pytest.raises(EpcFormatError):
            EpcCode.from_uri("urn:epc:id:sgtin:123")

    def test_hash_and_ordering(self):
        a, b = EpcCode(1, 1, 1), EpcCode(1, 1, 2)
        assert a < b
        assert len({a, b, EpcCode(1, 1, 1)}) == 2

    def test_is_valid_epc(self):
        assert is_valid_epc("20.1.1")
        assert not is_valid_epc("garbage")
        assert not is_valid_epc("20.1")


class TestGeneration:
    def test_count(self):
        assert len(list(generate_epcs(10))) == 10

    def test_unique_by_default(self):
        codes = list(generate_epcs(200, serial=(1, 100000)))
        assert len(set(codes)) == 200

    def test_fixed_company(self):
        codes = list(generate_epcs(20, company=42))
        assert all(c.company == 42 for c in codes)

    def test_company_range(self):
        codes = list(generate_epcs(50, company=(5, 6)))
        assert {c.company for c in codes} <= {5, 6}

    def test_deterministic_with_seeded_rng(self):
        a = list(generate_epcs(10, rng=random.Random(1)))
        b = list(generate_epcs(10, rng=random.Random(1)))
        assert a == b

    def test_too_small_space_raises(self):
        with pytest.raises(EpcFormatError):
            list(generate_epcs(50, company=1, product=1, serial=(1, 10)))


class TestEpcPattern:
    def test_paper_pattern(self):
        pattern = EpcPattern("20.*.[5000-9999]")
        assert pattern.matches("20.17.5000")
        assert pattern.matches("20.1.9999")
        assert not pattern.matches("20.1.4999")
        assert not pattern.matches("21.1.5001")

    def test_literal_segments(self):
        pattern = EpcPattern("20.17.5001")
        assert pattern.matches(EpcCode(20, 17, 5001))
        assert not pattern.matches(EpcCode(20, 17, 5002))

    def test_all_stars(self):
        assert EpcPattern("*.*.*").matches("1.2.3")

    def test_malformed_epc_never_matches(self):
        assert not EpcPattern("*.*.*").matches("garbage")

    def test_bad_segment_count(self):
        with pytest.raises(EpcFormatError):
            EpcPattern("20.*")

    def test_bad_range(self):
        with pytest.raises(EpcFormatError):
            EpcPattern("20.*.[9-5]")
        with pytest.raises(EpcFormatError):
            EpcPattern("20.*.[5..9]")
        with pytest.raises(EpcFormatError):
            EpcPattern("20.*.[abc]")

    def test_non_integer_literal(self):
        with pytest.raises(EpcFormatError):
            EpcPattern("xx.*.*")

    def test_filter(self):
        pattern = EpcPattern("20.*.*")
        kept = list(pattern.filter(["20.1.1", "21.1.1", "20.2.2"]))
        assert kept == ["20.1.1", "20.2.2"]

    def test_equality(self):
        assert EpcPattern("20.*.*") == EpcPattern("20.*.*")
        assert EpcPattern("20.*.*") != EpcPattern("21.*.*")


class TestPatternToSql:
    def test_paper_translation(self):
        sql = pattern_to_sql("20.*.[5000-9999]")
        assert "tid LIKE '20.%.%'" in sql
        assert "extract_serial(tid) >= 5000" in sql
        assert "extract_serial(tid) <= 9999" in sql

    def test_custom_column(self):
        assert "tag LIKE" in pattern_to_sql("20.*.*", column="tag")

    def test_sql_agrees_with_matcher(self):
        """The LIKE + extract translation must accept the same EPCs."""
        from repro.dsms import Engine

        pattern = EpcPattern("20.*.[5000-9999]")
        engine = Engine()
        engine.create_stream("readings", "tid str")
        handle = engine.query(
            f"SELECT tid FROM readings WHERE {pattern_to_sql(pattern)}"
        )
        rng = random.Random(3)
        epcs = [
            f"{rng.choice([20, 21])}.{rng.randint(1, 5)}.{rng.randint(1, 12000)}"
            for __ in range(300)
        ]
        for index, epc in enumerate(epcs):
            engine.push("readings", {"tid": epc}, ts=float(index))
        sql_matches = {row["tid"] for row in handle.rows()}
        direct_matches = {epc for epc in epcs if pattern.matches(epc)}
        assert sql_matches == direct_matches

    def test_range_on_company_uses_to_int(self):
        sql = pattern_to_sql("[10-30].*.*")
        assert "to_int(extract_company(tid)) >= 10" in sql
