"""Unit tests for the ALE-style event-cycle reporting layer."""

import pytest

from repro.dsms import Engine
from repro.rfid.ale import EventCycle


@pytest.fixture
def wired(engine):
    engine.create_stream("readings", "tid str, read_time float")
    return engine


def push(engine, tid, ts):
    engine.push("readings", {"tid": tid, "read_time": ts}, ts=ts)


class TestCycles:
    def test_cycle_closes_on_time(self, wired):
        cycle = EventCycle(wired, ["readings"], "tid", duration=10.0)
        push(wired, "20.1.1", 1.0)
        push(wired, "20.1.2", 5.0)
        assert cycle.reports == []
        wired.advance_time(10.0)
        assert len(cycle.reports) == 1
        assert cycle.reports[0].count == 2

    def test_cycles_repeat(self, wired):
        cycle = EventCycle(wired, ["readings"], "tid", duration=10.0)
        push(wired, "20.1.1", 1.0)
        wired.advance_time(10.0)
        push(wired, "20.1.2", 15.0)
        wired.advance_time(20.0)
        assert [r.count for r in cycle.reports] == [1, 1]
        assert cycle.reports[1].cycle_index == 1

    def test_empty_cycle_still_reports(self, wired):
        """Active expiration: cycles close even with zero arrivals."""
        cycle = EventCycle(wired, ["readings"], "tid", duration=10.0)
        wired.advance_time(35.0)
        assert [r.count for r in cycle.reports] == [0, 0, 0]

    def test_distinct_tags_counted_once(self, wired):
        cycle = EventCycle(wired, ["readings"], "tid", duration=10.0)
        for ts in (1.0, 2.0, 3.0):
            push(wired, "20.1.1", ts)
        wired.advance_time(10.0)
        assert cycle.reports[0].count == 1

    def test_additions_and_deletions(self, wired):
        cycle = EventCycle(wired, ["readings"], "tid", duration=10.0)
        push(wired, "20.1.1", 1.0)
        push(wired, "20.1.2", 2.0)
        wired.advance_time(10.0)
        push(wired, "20.1.2", 11.0)
        push(wired, "20.1.3", 12.0)
        wired.advance_time(20.0)
        second = cycle.reports[1]
        assert second.additions == {"20.1.3"}
        assert second.deletions == {"20.1.1"}
        assert second.current == {"20.1.2", "20.1.3"}

    def test_include_patterns(self, wired):
        cycle = EventCycle(
            wired, ["readings"], "tid", duration=10.0,
            include=["20.*.[5000-9999]"],
        )
        push(wired, "20.1.6000", 1.0)
        push(wired, "20.1.10", 2.0)
        push(wired, "21.1.6000", 3.0)
        wired.advance_time(10.0)
        assert cycle.reports[0].current == {"20.1.6000"}

    def test_exclude_patterns_veto(self, wired):
        cycle = EventCycle(
            wired, ["readings"], "tid", duration=10.0,
            include=["20.*.*"], exclude=["20.9.*"],
        )
        push(wired, "20.1.1", 1.0)
        push(wired, "20.9.1", 2.0)
        wired.advance_time(10.0)
        assert cycle.reports[0].current == {"20.1.1"}

    def test_group_counts(self, wired):
        cycle = EventCycle(
            wired, ["readings"], "tid", duration=10.0,
            group_by={"low": "20.*.[1-4999]", "high": "20.*.[5000-9999]"},
        )
        push(wired, "20.1.100", 1.0)
        push(wired, "20.1.200", 2.0)
        push(wired, "20.1.7000", 3.0)
        wired.advance_time(10.0)
        assert cycle.reports[0].group_counts == {"low": 2, "high": 1}

    def test_multiple_streams(self, wired):
        wired.create_stream("readings2", "tid str, read_time float")
        cycle = EventCycle(
            wired, ["readings", "readings2"], "tid", duration=10.0
        )
        push(wired, "20.1.1", 1.0)
        wired.push("readings2", {"tid": "20.1.2", "read_time": 2.0}, ts=2.0)
        wired.advance_time(10.0)
        assert cycle.reports[0].count == 2

    def test_on_report_callback(self, wired):
        got = []
        EventCycle(
            wired, ["readings"], "tid", duration=5.0, on_report=got.append
        )
        push(wired, "20.1.1", 1.0)
        wired.advance_time(5.0)
        assert len(got) == 1

    def test_stop_halts_cycles(self, wired):
        cycle = EventCycle(wired, ["readings"], "tid", duration=10.0)
        wired.advance_time(10.0)
        cycle.stop()
        wired.advance_time(50.0)
        assert len(cycle.reports) == 1

    def test_bad_duration_rejected(self, wired):
        with pytest.raises(ValueError):
            EventCycle(wired, ["readings"], "tid", duration=0.0)

    def test_missing_tag_field_ignored(self, wired):
        cycle = EventCycle(wired, ["readings"], "bogus_field", duration=10.0)
        push(wired, "20.1.1", 1.0)
        wired.advance_time(10.0)
        assert cycle.reports[0].count == 0
