"""Unit tests for sliding-window specs and buffers."""

import pytest

from repro.dsms.errors import WindowError
from repro.dsms.schema import Schema
from repro.dsms.tuples import Tuple
from repro.dsms.windows import (
    RangeWindowBuffer,
    RowsWindowBuffer,
    WindowSpec,
    duration_seconds,
)

SCHEMA = Schema.of("v")


def tup(ts, v="x"):
    return Tuple(SCHEMA, [v], ts)


class TestDurations:
    @pytest.mark.parametrize("amount,unit,expected", [
        (1, "SECONDS", 1.0),
        (1, "second", 1.0),
        (30, "MINUTES", 1800.0),
        (1, "HOURS", 3600.0),
        (2, "days", 172800.0),
        (500, "milliseconds", 0.5),
    ])
    def test_conversions(self, amount, unit, expected):
        assert duration_seconds(amount, unit) == expected

    def test_unknown_unit(self):
        with pytest.raises(WindowError):
            duration_seconds(1, "fortnights")

    def test_negative_duration(self):
        with pytest.raises(WindowError):
            duration_seconds(-1, "seconds")


class TestWindowSpec:
    def test_defaults(self):
        spec = WindowSpec("range", 5.0)
        assert not spec.symmetric
        assert not spec.include_current

    def test_symmetric(self):
        spec = WindowSpec("range", 60.0, following=60.0)
        assert spec.symmetric

    def test_rows_cannot_follow(self):
        with pytest.raises(WindowError):
            WindowSpec("rows", 5, following=1.0)

    def test_unknown_kind(self):
        with pytest.raises(WindowError):
            WindowSpec("sliding", 5)

    def test_make_buffer_range(self):
        buffer = WindowSpec("range", 5.0).make_buffer()
        assert isinstance(buffer, RangeWindowBuffer)
        assert buffer.duration == 5.0

    def test_make_buffer_symmetric_extends_retention(self):
        buffer = WindowSpec("range", 5.0, following=3.0).make_buffer()
        assert buffer.duration == 8.0

    def test_make_buffer_rows(self):
        buffer = WindowSpec("rows", 10).make_buffer()
        assert isinstance(buffer, RowsWindowBuffer)
        assert buffer.capacity == 10

    def test_make_buffer_unbounded(self):
        buffer = WindowSpec("range", None).make_buffer()
        assert buffer.duration is None

    def test_equality(self):
        assert WindowSpec("range", 5.0) == WindowSpec("range", 5.0)
        assert WindowSpec("range", 5.0) != WindowSpec("range", 6.0)


class TestRangeBuffer:
    def test_append_and_iterate(self):
        buffer = RangeWindowBuffer(10.0)
        for ts in (1.0, 2.0, 3.0):
            buffer.append(tup(ts))
        assert [t.ts for t in buffer] == [1.0, 2.0, 3.0]

    def test_eviction_on_append(self):
        buffer = RangeWindowBuffer(2.0)
        buffer.append(tup(1.0))
        buffer.append(tup(2.0))
        buffer.append(tup(5.0))  # evicts ts < 3.0
        assert [t.ts for t in buffer] == [5.0]

    def test_boundary_tuple_retained(self):
        buffer = RangeWindowBuffer(2.0)
        buffer.append(tup(1.0))
        buffer.append(tup(3.0))  # cutoff = 1.0; ts=1.0 not strictly older
        assert len(buffer) == 2

    def test_unbounded_never_evicts(self):
        buffer = RangeWindowBuffer(None)
        for ts in range(100):
            buffer.append(tup(float(ts)))
        assert len(buffer) == 100

    def test_explicit_evict(self):
        buffer = RangeWindowBuffer(2.0)
        buffer.append(tup(1.0))
        dropped = buffer.evict(now=10.0)
        assert dropped == 1
        assert len(buffer) == 0

    def test_tuples_between(self):
        buffer = RangeWindowBuffer(None)
        for ts in (1.0, 2.0, 3.0, 4.0):
            buffer.append(tup(ts))
        assert [t.ts for t in buffer.tuples_between(2.0, 3.0)] == [2.0, 3.0]

    def test_tuples_preceding_excludes_anchor_by_default(self):
        buffer = RangeWindowBuffer(None)
        first = tup(1.0)
        anchor = tup(1.5)
        buffer.append(first)
        buffer.append(anchor)
        got = list(buffer.tuples_preceding(anchor, 1.0))
        assert got == [first]

    def test_tuples_preceding_include_anchor(self):
        buffer = RangeWindowBuffer(None)
        anchor = tup(1.0)
        buffer.append(anchor)
        assert list(buffer.tuples_preceding(anchor, 1.0, include_anchor=True)) == [
            anchor
        ]

    def test_tuples_preceding_respects_duration(self):
        buffer = RangeWindowBuffer(None)
        old = tup(0.0)
        recent = tup(4.5)
        anchor = tup(5.0)
        for t in (old, recent, anchor):
            buffer.append(t)
        assert list(buffer.tuples_preceding(anchor, 1.0)) == [recent]

    def test_tuples_preceding_ignores_later_tuples(self):
        buffer = RangeWindowBuffer(None)
        anchor = tup(5.0)
        later = tup(6.0)
        buffer.append(anchor)
        buffer.append(later)
        assert list(buffer.tuples_preceding(later, 10.0)) == [anchor]
        assert list(buffer.tuples_preceding(anchor, 10.0)) == []

    def test_negative_duration_rejected(self):
        with pytest.raises(WindowError):
            RangeWindowBuffer(-1.0)

    def test_clear(self):
        buffer = RangeWindowBuffer(None)
        buffer.append(tup(1.0))
        buffer.clear()
        assert len(buffer) == 0


class TestRowsBuffer:
    def test_capacity_enforced(self):
        buffer = RowsWindowBuffer(2)
        for ts in (1.0, 2.0, 3.0):
            buffer.append(tup(ts))
        assert [t.ts for t in buffer] == [2.0, 3.0]

    def test_zero_capacity(self):
        buffer = RowsWindowBuffer(0)
        buffer.append(tup(1.0))
        assert len(buffer) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(WindowError):
            RowsWindowBuffer(-1)

    def test_tuples_preceding(self):
        buffer = RowsWindowBuffer(5)
        first = tup(1.0)
        anchor = tup(2.0)
        buffer.append(first)
        buffer.append(anchor)
        assert list(buffer.tuples_preceding(anchor)) == [first]
