"""Unit tests for repro.dsms.schema."""

import pytest

from repro.dsms.errors import SchemaError
from repro.dsms.schema import Field, FieldType, Schema


class TestFieldType:
    def test_int_accepts_int(self):
        assert FieldType.INT.accepts(3)

    def test_int_rejects_bool(self):
        assert not FieldType.INT.accepts(True)

    def test_int_rejects_float(self):
        assert not FieldType.INT.accepts(3.5)

    def test_float_accepts_int_and_float(self):
        assert FieldType.FLOAT.accepts(3)
        assert FieldType.FLOAT.accepts(3.5)

    def test_str_accepts_str_only(self):
        assert FieldType.STR.accepts("abc")
        assert not FieldType.STR.accepts(3)

    def test_bool_accepts_bool_only(self):
        assert FieldType.BOOL.accepts(True)
        assert not FieldType.BOOL.accepts(1)

    def test_timestamp_accepts_numbers(self):
        assert FieldType.TIMESTAMP.accepts(1.5)
        assert FieldType.TIMESTAMP.accepts(10)
        assert not FieldType.TIMESTAMP.accepts("10")

    def test_any_accepts_everything(self):
        assert FieldType.ANY.accepts(object())

    def test_null_legal_for_every_type(self):
        for ftype in FieldType:
            assert ftype.accepts(None)

    def test_coerce_int_from_string(self):
        assert FieldType.INT.coerce("42") == 42

    def test_coerce_float_from_string(self):
        assert FieldType.FLOAT.coerce("4.5") == 4.5

    def test_coerce_bool_from_words(self):
        assert FieldType.BOOL.coerce("true") is True
        assert FieldType.BOOL.coerce("no") is False

    def test_coerce_bad_bool_raises(self):
        with pytest.raises(SchemaError):
            FieldType.BOOL.coerce("maybe")

    def test_coerce_bad_int_raises(self):
        with pytest.raises(SchemaError):
            FieldType.INT.coerce("abc")

    def test_coerce_none_passes_through(self):
        assert FieldType.INT.coerce(None) is None


class TestField:
    def test_valid_name(self):
        field = Field("tag_id", FieldType.STR)
        assert field.name == "tag_id"

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("tag id")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("")

    def test_equality_and_hash(self):
        assert Field("a", FieldType.INT) == Field("a", FieldType.INT)
        assert Field("a", FieldType.INT) != Field("a", FieldType.STR)
        assert hash(Field("a", FieldType.INT)) == hash(Field("a", FieldType.INT))


class TestSchema:
    def test_parse_with_types(self):
        schema = Schema.parse("reader_id str, tag_id str, read_time timestamp")
        assert schema.names == ("reader_id", "tag_id", "read_time")
        assert schema.fields[2].type is FieldType.TIMESTAMP

    def test_parse_without_types_defaults_any(self):
        schema = Schema.parse("a, b")
        assert all(f.type is FieldType.ANY for f in schema.fields)

    def test_parse_unknown_type_raises(self):
        with pytest.raises(SchemaError):
            Schema.parse("a frobnicator")

    def test_parse_malformed_raises(self):
        with pytest.raises(SchemaError):
            Schema.parse("a int extra")

    def test_of_shorthand(self):
        schema = Schema.of("x", "y")
        assert len(schema) == 2

    def test_duplicate_field_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("x", "x")

    def test_position_lookup(self):
        schema = Schema.of("a", "b", "c")
        assert schema.position("b") == 1

    def test_position_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").position("z")

    def test_contains(self):
        schema = Schema.of("a", "b")
        assert "a" in schema
        assert "z" not in schema

    def test_equality_across_instances(self):
        assert Schema.parse("a int, b str") == Schema.parse("a int, b str")
        assert Schema.parse("a int") != Schema.parse("a str")

    def test_hashable(self):
        assert hash(Schema.of("a")) == hash(Schema.of("a"))

    def test_validate_accepts_conforming_row(self):
        schema = Schema.parse("a int, b str")
        schema.validate([1, "x"])  # no raise

    def test_validate_rejects_wrong_arity(self):
        schema = Schema.parse("a int, b str")
        with pytest.raises(SchemaError):
            schema.validate([1])

    def test_validate_rejects_wrong_type(self):
        schema = Schema.parse("a int, b str")
        with pytest.raises(SchemaError):
            schema.validate(["oops", "x"])

    def test_validate_accepts_nulls(self):
        schema = Schema.parse("a int, b str")
        schema.validate([None, None])

    def test_coerce_row(self):
        schema = Schema.parse("a int, b float, c str")
        assert schema.coerce_row(["1", "2.5", 3]) == (1, 2.5, "3")

    def test_project(self):
        schema = Schema.parse("a int, b str, c float")
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")
        assert projected.fields[0].type is FieldType.FLOAT

    def test_rename(self):
        schema = Schema.parse("a int, b str")
        renamed = schema.rename({"a": "alpha"})
        assert renamed.names == ("alpha", "b")
        assert renamed.fields[0].type is FieldType.INT

    def test_iteration_order(self):
        schema = Schema.of("x", "y", "z")
        assert [f.name for f in schema] == ["x", "y", "z"]
