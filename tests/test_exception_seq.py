"""Unit tests for EXCEPTION_SEQ / CLEVEL_SEQ and completion levels."""

import pytest

from repro.core.operators import (
    ExceptionReason,
    ExceptionSeqOperator,
    OperatorWindow,
    PairingMode,
    SeqArg,
)
from repro.dsms import Engine
from repro.dsms.errors import EslSemanticError


def build(engine, streams=("a", "b", "c"), **kw):
    for name in streams:
        if name not in engine.streams:
            engine.create_stream(name, "tagid str, tagtime float")
    return ExceptionSeqOperator(engine, [SeqArg(s) for s in streams], **kw)


def feed(engine, trace, tag="x"):
    for stream, ts in trace:
        engine.push(stream, {"tagid": tag, "tagtime": ts}, ts=ts)


def reasons(op):
    return [o.reason for o in op.outcomes]


def levels(op):
    return [o.level for o in op.outcomes]


class TestConstruction:
    def test_trailing_star_rejected(self):
        engine = Engine()
        engine.create_stream("a", "x")
        engine.create_stream("b", "x")
        with pytest.raises(EslSemanticError, match="trailing star"):
            ExceptionSeqOperator(
                engine, [SeqArg("a"), SeqArg("b", starred=True)]
            )

    def test_non_trailing_star_accepted(self):
        engine = Engine()
        engine.create_stream("a", "x")
        engine.create_stream("b", "x")
        op = ExceptionSeqOperator(
            engine, [SeqArg("a", starred=True), SeqArg("b")]
        )
        assert op.args[0].starred

    def test_unrestricted_mode_rejected(self):
        engine = Engine()
        engine.create_stream("a", "x")
        engine.create_stream("b", "x")
        with pytest.raises(EslSemanticError):
            ExceptionSeqOperator(
                engine, [SeqArg("a"), SeqArg("b")],
                mode=PairingMode.UNRESTRICTED,
            )


class TestCompletion:
    def test_clean_sequence_completes(self):
        engine = Engine()
        op = build(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("c", 3.0)])
        assert reasons(op) == [ExceptionReason.COMPLETED]
        assert levels(op) == [3]
        assert op.completions_emitted == 1
        assert op.exceptions_emitted == 0

    def test_repeated_clean_sequences(self):
        engine = Engine()
        op = build(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("c", 3.0),
                      ("a", 4.0), ("b", 5.0), ("c", 6.0)])
        assert levels(op) == [3, 3]

    def test_completion_binding_lookup(self):
        engine = Engine()
        op = build(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("c", 3.0)])
        outcome = op.outcomes[0]
        assert outcome.tuple_for("a").ts == 1.0
        assert outcome.tuple_for("c").ts == 3.0
        assert not outcome.is_exception


class TestWrongTuple:
    def test_skipped_stage(self):
        engine = Engine()
        op = build(engine)
        feed(engine, [("a", 1.0), ("c", 2.0)])
        assert reasons(op) == [ExceptionReason.WRONG_TUPLE]
        assert levels(op) == [1]
        assert op.outcomes[0].expected == "b"
        assert op.outcomes[0].offending.ts == 2.0

    def test_partial_preserved_in_outcome(self):
        engine = Engine()
        op = build(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("a", 3.0)])
        outcome = op.outcomes[0]
        assert outcome.level == 2
        assert [t.ts for t in outcome.partial] == [1.0, 2.0]
        assert outcome.tuple_for("c") is None  # never bound

    def test_consecutive_recovery_restarts(self):
        engine = Engine()
        op = build(engine, mode=PairingMode.CONSECUTIVE)
        # a then c (exception), then a,b,c should complete.
        feed(engine, [("a", 1.0), ("c", 2.0),
                      ("a", 3.0), ("b", 4.0), ("c", 5.0)])
        assert reasons(op) == [
            ExceptionReason.WRONG_TUPLE, ExceptionReason.COMPLETED,
        ]

    def test_recent_repeat_replaces_binding(self):
        """The paper's RECENT scenario: (A, B) + B raises an exception and
        the second B replaces the first."""
        engine = Engine()
        op = build(engine, mode=PairingMode.RECENT)
        feed(engine, [("a", 1.0), ("b", 2.0), ("b", 3.0), ("c", 4.0)])
        assert reasons(op) == [
            ExceptionReason.WRONG_TUPLE, ExceptionReason.COMPLETED,
        ]
        completed = op.outcomes[1]
        assert completed.tuple_for("b").ts == 3.0  # the replacement

    def test_recent_nonmember_dropped_partial_survives(self):
        engine = Engine()
        op = build(engine, mode=PairingMode.RECENT)
        feed(engine, [("a", 1.0), ("c", 2.0), ("b", 3.0), ("c", 4.0)])
        # c@2 raises; (a) survives; b@3 extends; c@4 completes.
        assert reasons(op) == [
            ExceptionReason.WRONG_TUPLE, ExceptionReason.COMPLETED,
        ]


class TestWrongStart:
    def test_level_zero_exception(self):
        engine = Engine()
        op = build(engine)
        feed(engine, [("b", 1.0)])
        assert reasons(op) == [ExceptionReason.WRONG_START]
        assert levels(op) == [0]

    def test_paper_scenario_after_completion(self):
        """(A,B,C) completes, then a lone C cannot start: level-0."""
        engine = Engine()
        op = build(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("c", 3.0), ("c", 4.0)])
        assert reasons(op) == [
            ExceptionReason.COMPLETED, ExceptionReason.WRONG_START,
        ]

    def test_wrong_start_reporting_can_be_disabled(self):
        engine = Engine()
        op = build(engine, report_wrong_start=False)
        feed(engine, [("b", 1.0)])
        assert op.outcomes == []


class TestActiveExpiration:
    def window(self, anchor=0):
        return OperatorWindow(3600.0, anchor, "following")

    def test_timeout_fires_without_arrivals(self):
        engine = Engine()
        op = build(engine, window=self.window())
        feed(engine, [("a", 0.0), ("b", 10.0)])
        engine.advance_time(5000.0)  # heartbeat only — no tuples
        assert reasons(op) == [ExceptionReason.WINDOW_EXPIRED]
        assert levels(op) == [2]

    def test_completion_cancels_timer(self):
        engine = Engine()
        op = build(engine, window=self.window())
        feed(engine, [("a", 0.0), ("b", 1.0), ("c", 2.0)])
        engine.advance_time(10000.0)
        assert reasons(op) == [ExceptionReason.COMPLETED]
        assert engine.clock.pending_timers() == 0

    def test_timeout_fires_before_late_tuple(self):
        engine = Engine()
        op = build(engine, window=self.window())
        feed(engine, [("a", 0.0), ("b", 10.0)])
        feed(engine, [("c", 4000.0)])  # arrives after the deadline
        # The expiration is detected first; the late c is then a wrong start.
        assert reasons(op) == [
            ExceptionReason.WINDOW_EXPIRED, ExceptionReason.WRONG_START,
        ]

    def test_window_anchored_mid_sequence(self):
        """OVER [d FOLLOWING A2]: the timer arms when stage 2 binds."""
        engine = Engine()
        op = build(engine, window=OperatorWindow(100.0, 1, "following"))
        feed(engine, [("a", 0.0)])
        engine.advance_time(1000.0)  # no timer yet: anchor is stage 1
        assert op.outcomes == []
        feed(engine, [("b", 1000.0)])
        engine.advance_time(2000.0)
        assert reasons(op) == [ExceptionReason.WINDOW_EXPIRED]

    def test_preceding_window_checked_at_completion(self):
        engine = Engine()
        op = build(engine, window=OperatorWindow(5.0, 2, "preceding"))
        feed(engine, [("a", 0.0), ("b", 1.0), ("c", 100.0)])
        assert reasons(op) == [ExceptionReason.WINDOW_EXPIRED]

    def test_timer_generation_guard(self):
        """A reset partial must not be killed by its predecessor's timer."""
        engine = Engine()
        op = build(engine, window=self.window())
        feed(engine, [("a", 0.0), ("b", 1.0), ("c", 2.0)])   # completes
        feed(engine, [("a", 3599.0), ("b", 3599.5)])          # new run
        engine.advance_time(3601.0)  # first run's deadline passes
        assert reasons(op) == [ExceptionReason.COMPLETED]
        feed(engine, [("c", 3602.0)])
        assert reasons(op) == [
            ExceptionReason.COMPLETED, ExceptionReason.COMPLETED,
        ]


class TestPartitioning:
    def test_per_tag_automata(self):
        engine = Engine()
        op = build(engine, partition_by=lambda t: t["tagid"])
        for stream, tag, ts in [
            ("a", "t1", 1.0), ("a", "t2", 2.0),
            ("b", "t1", 3.0), ("b", "t2", 4.0),
            ("c", "t1", 5.0), ("c", "t2", 6.0),
        ]:
            engine.push(stream, {"tagid": tag, "tagtime": ts}, ts=ts)
        assert levels(op) == [3, 3]

    def test_guard_rejection_is_exception(self):
        engine = Engine()
        op = build(
            engine,
            guard=lambda b: len({t["tagid"] for t in b.values()}) == 1,
        )
        feed(engine, [("a", 1.0)], tag="t1")
        feed(engine, [("b", 2.0)], tag="t2")  # guard fails: wrong tuple
        assert reasons(op) == [ExceptionReason.WRONG_TUPLE]


class TestBookkeeping:
    def test_exceptions_helper(self):
        engine = Engine()
        op = build(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("c", 3.0), ("b", 4.0)])
        assert len(op.exceptions()) == 1
        assert len(op.outcomes) == 2

    def test_drain_outcomes(self):
        engine = Engine()
        op = build(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("c", 3.0)])
        assert len(op.drain_outcomes()) == 1
        assert op.outcomes == []

    def test_stop_cancels_timers(self):
        engine = Engine()
        op = build(engine, window=OperatorWindow(100.0, 0, "following"))
        feed(engine, [("a", 0.0)])
        op.stop()
        assert engine.clock.pending_timers() == 0
        engine.advance_time(1000.0)
        assert op.outcomes == []

    def test_state_size(self):
        engine = Engine()
        op = build(engine)
        feed(engine, [("a", 1.0), ("b", 2.0)])
        assert op.state_size == 2


class TestStarStages:
    """Starred stages in EXCEPTION_SEQ — the extension the paper mentions
    but leaves undetailed ("EXCEPTION_SEQ can also allow repeating star
    sequences")."""

    def build_star(self, engine, max_gap=None, **kw):
        for name in ("a", "b", "c"):
            if name not in engine.streams:
                engine.create_stream(name, "tagid str, tagtime float")
        return ExceptionSeqOperator(
            engine,
            [SeqArg("a"), SeqArg("b", starred=True, max_gap=max_gap),
             SeqArg("c")],
            **kw,
        )

    def test_repeated_middle_stage_completes(self):
        engine = Engine()
        op = self.build_star(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("b", 3.0), ("b", 4.0),
                      ("c", 5.0)])
        assert reasons(op) == [ExceptionReason.COMPLETED]
        done = op.outcomes[0]
        assert len(done.run_for("b")) == 3
        assert done.tuple_for("b").ts == 4.0

    def test_level_counts_entered_stages(self):
        engine = Engine()
        op = self.build_star(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("b", 3.0), ("a", 4.0)])
        # a@4 is a wrong extension while (A, B+) is open: level 2.
        assert reasons(op) == [ExceptionReason.WRONG_TUPLE]
        assert levels(op) == [2]

    def test_gap_violation_is_wrong_tuple(self):
        engine = Engine()
        op = self.build_star(engine, max_gap=1.0)
        feed(engine, [("a", 1.0), ("b", 2.0), ("b", 10.0)])  # gap 8 > 1
        assert reasons(op) == [ExceptionReason.WRONG_TUPLE]
        assert levels(op) == [2]

    def test_consecutive_recovery_after_star_break(self):
        engine = Engine()
        op = self.build_star(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("a", 3.0),   # breaks, restarts
                      ("b", 4.0), ("c", 5.0)])
        assert reasons(op) == [
            ExceptionReason.WRONG_TUPLE, ExceptionReason.COMPLETED,
        ]

    def test_timer_arms_on_first_star_tuple(self):
        engine = Engine()
        op = self.build_star(
            engine,
            window=OperatorWindow(100.0, 1, "following"),
        )
        feed(engine, [("a", 0.0), ("b", 10.0), ("b", 20.0)])
        engine.advance_time(1000.0)
        assert reasons(op) == [ExceptionReason.WINDOW_EXPIRED]
        # The deadline keyed off the FIRST b tuple (10.0 + 100.0).
        assert op.outcomes[0].ts == 110.0

    def test_state_size_counts_run_tuples(self):
        engine = Engine()
        op = self.build_star(engine)
        feed(engine, [("a", 1.0), ("b", 2.0), ("b", 3.0)])
        assert op.state_size == 3

    def test_star_query_through_language(self):
        engine = Engine()
        for name in ("a1", "a2", "a3"):
            engine.create_stream(name, "tagid str, tagtime float")
        handle = engine.query(
            "SELECT A1.tagid, COUNT(A2*) AS reps FROM a1, a2, a3 "
            "WHERE EXCEPTION_SEQ(A1, A2*, A3)"
        )
        for stream, ts in [("a1", 1.0), ("a2", 2.0), ("a2", 3.0),
                           ("a1", 4.0)]:
            engine.push(stream, {"tagid": "s", "tagtime": ts}, ts=ts)
        rows = handle.rows()
        assert len(rows) == 1
        assert rows[0]["reps"] == 2  # the broken partial had two A2 tuples
