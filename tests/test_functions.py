"""Unit tests for the built-in scalar functions."""

import pytest

from repro.dsms.functions import BUILTINS, default_functions


def call(name, *args):
    return BUILTINS[name](*args)


class TestStringFunctions:
    def test_upper_lower(self):
        assert call("upper", "abc") == "ABC"
        assert call("lower", "ABC") == "abc"

    def test_length(self):
        assert call("length", "hello") == 5

    def test_substr_one_based(self):
        assert call("substr", "hello", 2, 3) == "ell"
        assert call("substr", "hello", 2) == "ello"

    def test_substr_clamps_start(self):
        assert call("substr", "hello", 0) == "hello"

    def test_trim(self):
        assert call("trim", "  x  ") == "x"

    def test_concat(self):
        assert call("concat", "a", 1, "b") == "a1b"

    def test_instr_one_based_zero_absent(self):
        assert call("instr", "hello", "ll") == 3
        assert call("instr", "hello", "zz") == 0

    def test_replace(self):
        assert call("replace", "a.b.c", ".", "-") == "a-b-c"

    def test_split_part(self):
        assert call("split_part", "20.17.5001", ".", 1) == "20"
        assert call("split_part", "20.17.5001", ".", 3) == "5001"
        assert call("split_part", "20.17.5001", ".", 9) is None


class TestNumericFunctions:
    def test_abs(self):
        assert call("abs", -4) == 4

    def test_round(self):
        assert call("round", 2.567, 1) == 2.6
        assert call("round", 2.5678) == 3

    def test_floor_ceil(self):
        assert call("floor", 2.9) == 2
        assert call("ceil", 2.1) == 3

    def test_mod(self):
        assert call("mod", 7, 3) == 1
        assert call("mod", 7, 0) is None

    def test_power_sqrt(self):
        assert call("power", 2, 10) == 1024.0
        assert call("sqrt", 9) == 3.0

    def test_casts(self):
        assert call("to_int", "42") == 42
        assert call("to_int", "4.9") == 4
        assert call("to_float", "2.5") == 2.5
        assert call("to_str", 42) == "42"


class TestNullHandling:
    @pytest.mark.parametrize("name", ["upper", "length", "abs", "to_int"])
    def test_null_propagation(self, name):
        assert call(name, None) is None

    def test_coalesce(self):
        assert call("coalesce", None, None, 3, 4) == 3
        assert call("coalesce", None, None) is None

    def test_ifnull(self):
        assert call("ifnull", None, "d") == "d"
        assert call("ifnull", "v", "d") == "v"


class TestEpcHelpers:
    def test_extract_serial(self):
        assert call("extract_serial", "20.17.5001") == 5001

    def test_extract_serial_malformed(self):
        assert call("extract_serial", "garbage") is None
        assert call("extract_serial", "20.17.xyz") is None
        assert call("extract_serial", None) is None

    def test_extract_company(self):
        assert call("extract_company", "20.17.5001") == "20"
        assert call("extract_company", "") is None

    def test_extract_product(self):
        assert call("extract_product", "20.17.5001") == "17"
        assert call("extract_product", "20") is None


class TestRegistryCopy:
    def test_default_functions_is_a_copy(self):
        fns = default_functions()
        fns["upper"] = lambda v: "patched"
        assert BUILTINS["upper"]("x") == "X"  # original untouched

    def test_paper_example3_aliases_present(self):
        fns = default_functions()
        assert "extract_serial" in fns
        assert "substring" in fns and "ceiling" in fns
