"""Unit tests for built-in aggregates and the registry."""

import math

import pytest

from repro.dsms.aggregates import AggregateRegistry, BUILTIN_AGGREGATES
from repro.dsms.errors import UnknownAggregateError


def compute(name, values):
    return BUILTIN_AGGREGATES[name]().compute(values)


class TestBuiltins:
    def test_count_skips_nulls(self):
        assert compute("count", [1, None, 2]) == 2

    def test_count_star_counts_everything(self):
        assert compute("count(*)", [1, None, 2]) == 3

    def test_sum(self):
        assert compute("sum", [1, 2, 3]) == 6
        assert compute("sum", []) is None
        assert compute("sum", [None]) is None

    def test_avg(self):
        assert compute("avg", [2, 4]) == 3.0
        assert compute("avg", []) is None
        assert compute("avg", [1, None, 3]) == 2.0

    def test_min_max(self):
        assert compute("min", [3, 1, 2]) == 1
        assert compute("max", [3, 1, 2]) == 3
        assert compute("min", []) is None

    def test_first_last(self):
        assert compute("first", [5, 6, 7]) == 5
        assert compute("last", [5, 6, 7]) == 7
        assert compute("first", []) is None
        assert compute("last", []) is None

    def test_first_keeps_leading_null(self):
        # first/last do not skip NULLs: the first value *is* NULL.
        assert compute("first", [None, 2]) is None

    def test_stddev(self):
        values = [2, 4, 4, 4, 5, 5, 7, 9]
        expected = 2.138089935299395  # sample stddev
        assert math.isclose(compute("stddev", values), expected)

    def test_stddev_needs_two_values(self):
        assert compute("stddev", [1]) is None

    def test_count_distinct(self):
        assert compute("count_distinct", [1, 1, 2, 2, 3]) == 3

    def test_median_odd_even(self):
        assert compute("median", [3, 1, 2]) == 2
        assert compute("median", [1, 2, 3, 4]) == 2.5
        assert compute("median", []) is None


class TestProtocol:
    def test_incremental_equals_batch(self):
        agg = BUILTIN_AGGREGATES["avg"]()
        state = agg.initialize()
        for value in [1, 2, 3, 4]:
            state = agg.iterate(state, value)
        assert agg.terminate(state) == compute("avg", [1, 2, 3, 4])

    def test_states_are_independent(self):
        a = BUILTIN_AGGREGATES["count"]()
        b = BUILTIN_AGGREGATES["count"]()
        state_a = a.iterate(a.initialize(), 1)
        state_b = b.initialize()
        assert a.terminate(state_a) == 1
        assert b.terminate(state_b) == 0


class TestRegistry:
    def test_create_builtin(self):
        registry = AggregateRegistry()
        assert registry.create("count").compute([1, 2]) == 2

    def test_case_insensitive(self):
        registry = AggregateRegistry()
        assert registry.create("COUNT").compute([1]) == 1

    def test_unknown_raises(self):
        registry = AggregateRegistry()
        with pytest.raises(UnknownAggregateError):
            registry.create("nope")

    def test_register_custom(self):
        registry = AggregateRegistry()
        from repro.dsms.uda import uda_from_callables

        registry.register(
            "second_smallest",
            uda_from_callables(
                "second_smallest",
                initialize=lambda: [],
                iterate=lambda s, v: sorted(s + [v])[:2],
                terminate=lambda s: s[1] if len(s) > 1 else None,
            ),
        )
        assert registry.create("second_smallest").compute([5, 3, 8, 1]) == 3

    def test_contains(self):
        registry = AggregateRegistry()
        assert "sum" in registry
        assert "nope" not in registry
