"""Differential tests: ShardedEngine output equals a single Engine's.

The sharded engine's contract is *indistinguishability*: for any workload,
the merged output stream — tuples, values, and order — must be exactly
what one Engine produces, at every shard count, under both executors.
These tests run the paper scenarios through both paths and compare row
lists (not sets): order is part of the contract.
"""

import pytest

from repro.dsms import Engine, ShardedEngine
from repro.dsms.errors import EslSemanticError
from repro.rfid import (
    build_dedup,
    build_dedup_sharded,
    build_lab_workflow,
    build_lab_workflow_sharded,
    build_quality_check,
    build_quality_check_sharded,
    dedup_workload,
    lab_workflow_workload,
    quality_check_workload,
    quality_query_text,
)
from repro.rfid.scenarios import DEDUP_QUERY


QUALITY_DDL = [
    ("c1", "readerid str, tagid str, tagtime float"),
    ("c2", "readerid str, tagid str, tagtime float"),
    ("c3", "readerid str, tagid str, tagtime float"),
    ("c4", "readerid str, tagid str, tagtime float"),
]


def quality_rows(workload):
    scenario = build_quality_check(workload).feed()
    return scenario.rows(), scenario.handle.results


# -- Example 6: hash-partitioned SEQ ---------------------------------------


@pytest.mark.parametrize("n_shards", [1, 2, 8])
def test_quality_serial_matches_single(n_shards):
    workload = quality_check_workload(n_products=60, seed=31)
    expected_rows, expected_results = quality_rows(workload)
    scenario = build_quality_check_sharded(workload, n_shards=n_shards).feed()
    try:
        assert scenario.rows() == expected_rows
        # Tuple-level equality: timestamps and values, in order.
        got = [(t.ts, t.values) for t in scenario.handle.results]
        assert got == [(t.ts, t.values) for t in expected_results]
    finally:
        scenario.engine.close()


@pytest.mark.parametrize("n_shards", [2, 4])
def test_quality_parallel_matches_single(n_shards):
    workload = quality_check_workload(n_products=40, seed=32)
    expected_rows, _ = quality_rows(workload)
    scenario = build_quality_check_sharded(
        workload, n_shards=n_shards, executor="parallel", batch_size=64
    ).feed()
    try:
        assert scenario.rows() == expected_rows
    finally:
        scenario.engine.close()


def test_quality_routes_by_hoisted_tagid_chain():
    workload = quality_check_workload(n_products=10, seed=33)
    scenario = build_quality_check_sharded(workload, n_shards=4)
    try:
        for stream in ("c1", "c2", "c3", "c4"):
            assert scenario.engine.route_for(stream) == ("hash", "tagid")
        assert scenario.handle.partition_field == "tagid"
    finally:
        scenario.engine.close()


def test_quality_state_partitions_across_shards():
    """Hash-routed per-tag partitions are disjoint: shard operator states
    sum to the single engine's state."""
    workload = quality_check_workload(n_products=50, seed=34)
    single = build_quality_check(workload).feed()
    sharded = build_quality_check_sharded(workload, n_shards=4).feed()
    try:
        assert sharded.handle.state_size == single.handle.operator.state_size
    finally:
        sharded.engine.close()


# -- Example 1: dedup (shard_by override, and broadcast fallback) ----------


def test_dedup_sharded_matches_single():
    workload = dedup_workload(n_tags=20, presences_per_tag=3, seed=41)
    expected = build_dedup(workload).feed().rows()
    scenario = build_dedup_sharded(workload, n_shards=4).feed()
    try:
        assert scenario.engine.route_for("readings") == ("hash", "tag_id")
        assert scenario.rows() == expected
    finally:
        scenario.engine.close()


def test_dedup_parallel_matches_single():
    workload = dedup_workload(n_tags=15, presences_per_tag=3, seed=42)
    expected = build_dedup(workload).feed().rows()
    scenario = build_dedup_sharded(
        workload, n_shards=2, executor="parallel"
    ).feed()
    try:
        assert scenario.rows() == expected
    finally:
        scenario.engine.close()


def test_dedup_without_key_falls_back_to_broadcast():
    """No shard_by and no hoisted key: the query runs replicated (every
    shard sees every tuple, output ships from shard 0) and still matches."""
    workload = dedup_workload(n_tags=12, presences_per_tag=3, seed=43)
    expected = build_dedup(workload).feed().rows()
    engine = ShardedEngine(n_shards=3)
    try:
        engine.create_stream(
            "readings", "reader_id str, tag_id str, read_time float"
        )
        engine.create_stream(
            "cleaned_readings", "reader_id str, tag_id str, read_time float"
        )
        engine.query(DEDUP_QUERY, name="dedup")
        handle = engine.collect("cleaned_readings")
        engine.run_trace(workload.trace)
        engine.flush()
        assert engine.route_for("readings") == ("broadcast", None)
        assert handle.rows() == expected
    finally:
        engine.close()


# -- Example 5: EXCEPTION_SEQ with timer-driven violations -----------------


@pytest.mark.parametrize("n_shards,executor", [
    (1, "serial"), (2, "serial"), (8, "serial"), (2, "parallel"),
])
def test_workflow_exception_seq_matches_single(n_shards, executor):
    """Active-expiration timeouts fire via the broadcast clock; violation
    tuples (timer outputs) must merge into the single engine's order."""
    workload = lab_workflow_workload(n_runs=30, violation_rate=0.4, seed=44)
    single = build_lab_workflow(workload, partitioned=True).feed(
        advance_to=1e9
    )
    expected = single.rows()
    assert expected, "workload must produce violations for this test"
    scenario = build_lab_workflow_sharded(
        workload, n_shards=n_shards, executor=executor
    ).feed(advance_to=1e9)
    try:
        assert scenario.rows() == expected
    finally:
        scenario.engine.close()


# -- routing conflicts and lifecycle ---------------------------------------


def _quality_engine(n_shards=2, **kw):
    engine = ShardedEngine(n_shards=n_shards, **kw)
    for name, schema in QUALITY_DDL:
        engine.create_stream(name, schema)
    return engine


def test_keyless_query_after_hash_route_raises():
    engine = _quality_engine()
    try:
        engine.query(quality_query_text(), name="quality")
        with pytest.raises(EslSemanticError, match="every\\s+shard"):
            engine.query("SELECT count(tagid) FROM c1", name="tally")
    finally:
        engine.close()


def test_conflicting_shard_keys_raise():
    engine = ShardedEngine(n_shards=2)
    try:
        for name in ("x", "y", "z"):
            engine.create_stream(name, "a str, b str, t float")
        engine.query(
            "SELECT x2.a FROM x AS x1, y AS x2 "
            "WHERE SEQ(x1, x2) AND x1.a=x2.a",
            name="by_a",
        )
        assert engine.route_for("x") == ("hash", "a")
        with pytest.raises(EslSemanticError, match="conflicting shard keys"):
            engine.query(
                "SELECT x2.b FROM x AS x1, z AS x2 "
                "WHERE SEQ(x1, x2) AND x1.b=x2.b",
                name="by_b",
            )
    finally:
        engine.close()


def test_shard_by_unknown_field_raises():
    engine = _quality_engine(shard_by={"c1": "serial_no"})
    try:
        with pytest.raises(EslSemanticError, match="serial_no"):
            engine.query(quality_query_text(), name="quality")
    finally:
        engine.close()


@pytest.mark.parametrize("executor", ["serial", "parallel"])
def test_broadcast_then_partitioned_runs_replicated(executor):
    """A broadcast pin (from an earlier keyless query) demotes a later
    partitionable query to replicated — correct, just not parallel."""
    workload = quality_check_workload(n_products=25, seed=45)
    single_engine = Engine()
    for name, schema in QUALITY_DDL:
        single_engine.create_stream(name, schema)
    tally_single = single_engine.query("SELECT count(tagid) FROM c1", name="t")
    quality_single = single_engine.query(quality_query_text(), name="q")
    single_engine.run_trace(workload.trace)
    single_engine.flush()

    engine = _quality_engine(n_shards=3, executor=executor, batch_size=32)
    try:
        tally = engine.query("SELECT count(tagid) FROM c1", name="t")
        quality = engine.query(quality_query_text(), name="q")
        assert quality.replicated
        for stream in ("c1", "c2", "c3", "c4"):
            assert engine.route_for(stream) == ("broadcast", None)
        engine.run_trace(workload.trace)
        engine.flush()
        assert tally.rows() == tally_single.rows()
        assert quality.rows() == quality_single.rows()
    finally:
        engine.close()


def test_setup_after_first_push_raises():
    engine = _quality_engine()
    try:
        engine.query(quality_query_text(), name="quality")
        engine.push(
            "c1", {"readerid": "r", "tagid": "t", "tagtime": 1.0}, ts=1.0
        )
        with pytest.raises(EslSemanticError, match="freezes"):
            engine.create_stream("late", "a str")
    finally:
        engine.close()


def test_invalid_constructor_args():
    with pytest.raises(EslSemanticError):
        ShardedEngine(n_shards=0)
    with pytest.raises(EslSemanticError):
        ShardedEngine(executor="threads")
    with pytest.raises(EslSemanticError):
        ShardedEngine(codec="msgpack")


# -- pipe transport: routing mixes, epochs, lifecycle ----------------------


def test_mixed_hash_and_broadcast_parallel_matches_single():
    """Hash-routed SEQ streams and a broadcast (replicated keyless query)
    stream in one parallel engine: both outputs match the single engine."""
    workload = quality_check_workload(n_products=25, seed=48)

    single = Engine()
    for name, schema in QUALITY_DDL:
        single.create_stream(name, schema)
    single.create_stream("audit", "tagid str")
    q_single = single.query(quality_query_text(), name="q")
    t_single = single.query("SELECT count(tagid) FROM audit", name="t")
    for stream, values, ts in workload.trace:
        single.push(stream, values, ts=ts)
        if stream == "c1":
            single.push("audit", (values["tagid"],), ts=ts)
    single.flush()

    engine = _quality_engine(n_shards=3, executor="parallel", batch_size=32)
    try:
        engine.create_stream("audit", "tagid str")
        quality = engine.query(quality_query_text(), name="q")
        tally = engine.query("SELECT count(tagid) FROM audit", name="t")
        for stream, values, ts in workload.trace:
            engine.push(stream, values, ts=ts)
            if stream == "c1":
                engine.push("audit", (values["tagid"],), ts=ts)
        engine.flush()
        assert engine.route_for("c1") == ("hash", "tagid")
        assert engine.route_for("audit") == ("broadcast", None)
        assert quality.rows() == q_single.rows()
        assert tally.rows() == t_single.rows()
    finally:
        engine.close()


def test_workflow_exception_seq_parallel_across_batch_epochs():
    """Timer-driven EXCEPTION_SEQ violations with a tiny batch size: the
    timeouts that produce violation tuples fire from clock advances that
    cross many transport batch epochs, and the merged order must still be
    the single engine's."""
    workload = lab_workflow_workload(n_runs=25, violation_rate=0.4, seed=49)
    expected = build_lab_workflow(workload, partitioned=True).feed(
        advance_to=1e9
    ).rows()
    assert expected, "workload must produce violations for this test"
    scenario = build_lab_workflow_sharded(
        workload, n_shards=2, executor="parallel", batch_size=8
    ).feed(advance_to=1e9)
    try:
        assert scenario.rows() == expected
    finally:
        scenario.engine.close()


def test_context_manager_and_close_idempotent():
    workload = quality_check_workload(n_products=15, seed=46)
    expected_rows, _ = quality_rows(workload)
    scenario = build_quality_check_sharded(
        workload, n_shards=2, executor="parallel", batch_size=32
    )
    with scenario.engine as engine:
        assert scenario.feed().rows() == expected_rows
        assert engine.alive_workers() == 2
    assert engine.alive_workers() == 0
    engine.close()  # second close is a no-op
    assert engine.alive_workers() == 0


def test_transport_stats_shape():
    workload = quality_check_workload(n_products=10, seed=47)
    scenario = build_quality_check_sharded(
        workload, n_shards=2, executor="parallel", batch_size=16
    ).feed()
    try:
        stats = scenario.engine.transport_stats()
        assert stats["executor"] == "parallel"
        assert stats["codec"] == "framed"
        assert stats["n_shards"] == 2
        assert len(stats["per_shard"]) == 2
        for entry in stats["per_shard"]:
            for key in (
                "frames_sent", "heartbeat_frames", "records_sent",
                "bytes_sent", "bytes_received", "round_trips",
                "encode_s", "decode_s", "worker_encode_s",
                "worker_decode_s", "batch_size",
            ):
                assert key in entry, key
        totals = stats["totals"]
        # Hash routing ships every trace record to exactly one shard.
        assert totals["records_sent"] == len(workload.trace)
        assert totals["frames_sent"] >= totals["round_trips"] > 0
        assert totals["bytes_sent"] > 0 and totals["bytes_received"] > 0
    finally:
        scenario.engine.close()


def test_serial_transport_stats_empty():
    engine = _quality_engine()
    try:
        engine.query(quality_query_text(), name="quality")
        engine.push(
            "c1", {"readerid": "r", "tagid": "t", "tagtime": 1.0}, ts=1.0
        )
        stats = engine.transport_stats()
        assert stats["executor"] == "serial"
        assert stats["codec"] is None
        assert stats["per_shard"] == []
        assert stats["totals"] == {}
        assert engine.alive_workers() == 0
    finally:
        engine.close()


def test_duplicate_and_stale_heartbeats_coalesce():
    """Only a strictly newer clock stamp reaches the workers: duplicate
    and stale advances are absorbed router-side (a stale clock cannot
    fire timers, so skipping preserves merge order exactly)."""
    engine = _quality_engine(executor="parallel", batch_size=1024)
    try:
        engine.query(quality_query_text(), name="quality")
        engine.advance_time(10.0)
        baseline = engine.transport_stats()["totals"]["heartbeat_frames"]
        assert baseline == 2  # one advance frame per shard
        engine.advance_time(10.0)  # duplicate stamp: coalesced away
        engine.advance_time(9.0)  # stale stamp: skipped
        totals = engine.transport_stats()["totals"]
        assert totals["heartbeat_frames"] == baseline
        engine.advance_time(11.0)  # newer stamp: one frame per shard again
        totals = engine.transport_stats()["totals"]
        assert totals["heartbeat_frames"] == baseline + 2
    finally:
        engine.close()
