"""Unit tests for single-stream transducers and ad-hoc snapshot views."""

import pytest

from repro.dsms import Engine, SnapshotView, Tuple, WindowSpec
from repro.dsms.errors import SchemaError
from repro.dsms.transducer import Transducer, filter_transducer, map_transducer


@pytest.fixture
def wired(engine):
    source = engine.create_stream("raw", "tagid str, v int")
    sink = engine.create_stream("out", "tagid str, v int")
    return engine, source, sink


class TestTransducer:
    def test_map(self, wired):
        engine, source, sink = wired
        got = engine.collect("out")
        map_transducer(source, sink, lambda t: t.replace(v=t["v"] * 2))
        engine.push("raw", {"tagid": "a", "v": 3}, ts=0.0)
        assert got.rows() == [{"tagid": "a", "v": 6}]

    def test_filter(self, wired):
        engine, source, sink = wired
        got = engine.collect("out")
        filter_transducer(source, sink, lambda t: t["v"] > 0)
        engine.push("raw", {"tagid": "a", "v": -1}, ts=0.0)
        engine.push("raw", {"tagid": "b", "v": 1}, ts=1.0)
        assert [r["tagid"] for r in got.rows()] == ["b"]

    def test_filter_requires_matching_schema(self, engine):
        source = engine.create_stream("a", "x int")
        sink = engine.create_stream("b", "y int")
        with pytest.raises(SchemaError):
            filter_transducer(source, sink, lambda t: True)

    def test_one_to_many(self, wired):
        engine, source, sink = wired
        got = engine.collect("out")
        Transducer(source, sink, lambda t: [t, t])
        engine.push("raw", {"tagid": "a", "v": 1}, ts=0.0)
        assert len(got) == 2

    def test_output_schema_enforced(self, wired):
        engine, source, sink = wired
        bad_schema_tuple = Tuple(
            engine.stream("raw").schema.project(["tagid"]), ["a"], 0.0
        )
        Transducer(source, sink, lambda t: [bad_schema_tuple])
        with pytest.raises(SchemaError):
            engine.push("raw", {"tagid": "a", "v": 1}, ts=0.0)

    def test_counts_and_selectivity(self, wired):
        engine, source, sink = wired
        transducer = filter_transducer(source, sink, lambda t: t["v"] > 0)
        assert transducer.selectivity == 1.0
        engine.push("raw", {"tagid": "a", "v": 1}, ts=0.0)
        engine.push("raw", {"tagid": "a", "v": -1}, ts=1.0)
        assert transducer.in_count == 2
        assert transducer.out_count == 1
        assert transducer.selectivity == 0.5

    def test_stop(self, wired):
        engine, source, sink = wired
        got = engine.collect("out")
        transducer = map_transducer(source, sink, lambda t: t)
        transducer.stop()
        engine.push("raw", {"tagid": "a", "v": 1}, ts=0.0)
        assert len(got) == 0


class TestSnapshotView:
    def make_view(self, engine, window=60.0):
        stream = engine.create_stream(
            "locs", "patient str, location str, tagtime float"
        )
        return stream, SnapshotView(stream, window)

    def feed(self, engine, rows):
        for patient, location, ts in rows:
            engine.push(
                "locs",
                {"patient": patient, "location": location, "tagtime": ts},
                ts=ts,
            )

    def test_current_respects_window(self, engine):
        __, view = self.make_view(engine, window=10.0)
        self.feed(engine, [("p1", "er", 0.0), ("p1", "ward", 100.0)])
        assert [t["location"] for t in view.current()] == ["ward"]

    def test_latest_by_patient_tracking(self, engine):
        """The paper's ad-hoc query: current location of each patient."""
        __, view = self.make_view(engine, window=None)
        self.feed(engine, [
            ("p1", "er", 0.0), ("p2", "icu", 1.0), ("p1", "ward", 2.0),
        ])
        latest = view.latest_by("patient")
        assert latest["p1"]["location"] == "ward"
        assert latest["p2"]["location"] == "icu"

    def test_select_with_predicate_and_projection(self, engine):
        __, view = self.make_view(engine, window=None)
        self.feed(engine, [("p1", "er", 0.0), ("p2", "icu", 1.0)])
        rows = view.select(
            where=lambda t: t["location"] == "icu", columns=["patient"]
        )
        assert rows == [{"patient": "p2"}]

    def test_aggregate_count(self, engine):
        __, view = self.make_view(engine, window=None)
        self.feed(engine, [("p1", "er", 0.0), ("p2", "er", 1.0)])
        assert view.aggregate("count", "patient") == 2

    def test_aggregate_count_star(self, engine):
        __, view = self.make_view(engine, window=None)
        self.feed(engine, [("p1", "er", 0.0)])
        assert view.aggregate("count") == 1

    def test_aggregate_with_where(self, engine):
        __, view = self.make_view(engine, window=None)
        self.feed(engine, [("p1", "er", 0.0), ("p2", "icu", 1.0)])
        count = view.aggregate(
            "count", "patient", where=lambda t: t["location"] == "er"
        )
        assert count == 1

    def test_window_spec_accepted(self, engine):
        stream = engine.create_stream("s2", "a")
        view = SnapshotView(stream, WindowSpec("rows", 2))
        for i in range(5):
            engine.push("s2", {"a": i}, ts=float(i))
        assert [t["a"] for t in view.current()] == [3, 4]

    def test_stop_detaches(self, engine):
        __, view = self.make_view(engine, window=None)
        view.stop()
        self.feed(engine, [("p1", "er", 0.0)])
        assert len(view) == 0
