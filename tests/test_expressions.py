"""Unit tests for the expression evaluator, including SQL NULL semantics."""

import pytest

from repro.dsms.errors import EslRuntimeError, UnknownFunctionError
from repro.dsms.expressions import (
    And,
    Between,
    BinaryOp,
    Case,
    Column,
    Env,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    SubqueryPredicate,
    TimestampRef,
    conjoin,
    truthy,
)
from repro.dsms.functions import default_functions
from repro.dsms.schema import Schema
from repro.dsms.tuples import Tuple

SCHEMA = Schema.parse("tagid str, serial int, tagtime float")


def env_with(tagid="20.1.5001", serial=5001, tagtime=3.0, alias="r"):
    tup = Tuple(SCHEMA, [tagid, serial, tagtime], tagtime)
    return Env({alias: tup}, default_functions())


class TestColumns:
    def test_qualified_lookup(self):
        assert Column("tagid", "r").eval(env_with()) == "20.1.5001"

    def test_bare_lookup_unambiguous(self):
        assert Column("serial").eval(env_with()) == 5001

    def test_bare_lookup_ambiguous_raises(self):
        tup = Tuple(SCHEMA, ["a", 1, 0.0], 0.0)
        env = Env({"x": tup, "y": tup})
        with pytest.raises(EslRuntimeError, match="ambiguous"):
            Column("tagid").eval(env)

    def test_unbound_alias_raises(self):
        with pytest.raises(EslRuntimeError):
            Column("tagid", "nope").eval(env_with())

    def test_unbound_bare_column_raises(self):
        with pytest.raises(EslRuntimeError):
            Column("nope").eval(env_with())

    def test_parent_scope_lookup(self):
        outer = env_with(alias="outer")
        inner = outer.child({"inner": Tuple(SCHEMA, ["x", 9, 1.0], 1.0)})
        assert Column("tagid", "outer").eval(inner) == "20.1.5001"
        assert Column("tagid", "inner").eval(inner) == "x"

    def test_timestamp_ref(self):
        assert TimestampRef("r").eval(env_with(tagtime=7.5)) == 7.5


class TestComparisons:
    @pytest.mark.parametrize("op,expected", [
        ("=", False), ("<>", True), ("!=", True),
        ("<", True), ("<=", True), (">", False), (">=", False),
    ])
    def test_operators(self, op, expected):
        expr = BinaryOp(op, Literal(1), Literal(2))
        assert expr.eval(Env()) is expected

    def test_null_propagates(self):
        expr = BinaryOp("=", Literal(None), Literal(1))
        assert expr.eval(Env()) is None

    def test_incomparable_types_raise(self):
        with pytest.raises(EslRuntimeError):
            BinaryOp("<", Literal("a"), Literal(1)).eval(Env())


class TestArithmetic:
    def test_basics(self):
        env = Env()
        assert BinaryOp("+", Literal(2), Literal(3)).eval(env) == 5
        assert BinaryOp("-", Literal(2), Literal(3)).eval(env) == -1
        assert BinaryOp("*", Literal(2), Literal(3)).eval(env) == 6
        assert BinaryOp("/", Literal(6), Literal(3)).eval(env) == 2

    def test_division_by_zero_yields_null(self):
        assert BinaryOp("/", Literal(1), Literal(0)).eval(Env()) is None
        assert BinaryOp("%", Literal(1), Literal(0)).eval(Env()) is None

    def test_concat(self):
        assert BinaryOp("||", Literal("a"), Literal("b")).eval(Env()) == "ab"

    def test_null_propagates(self):
        assert BinaryOp("+", Literal(None), Literal(1)).eval(Env()) is None

    def test_negate(self):
        assert Negate(Literal(5)).eval(Env()) == -5
        assert Negate(Literal(None)).eval(Env()) is None


class TestKleeneLogic:
    T, F, N = Literal(True), Literal(False), Literal(None)

    def test_and_truth_table(self):
        env = Env()
        assert And(self.T, self.T).eval(env) is True
        assert And(self.T, self.F).eval(env) is False
        assert And(self.T, self.N).eval(env) is None
        assert And(self.F, self.N).eval(env) is False  # false dominates

    def test_or_truth_table(self):
        env = Env()
        assert Or(self.F, self.F).eval(env) is False
        assert Or(self.F, self.T).eval(env) is True
        assert Or(self.F, self.N).eval(env) is None
        assert Or(self.T, self.N).eval(env) is True  # true dominates

    def test_not(self):
        env = Env()
        assert Not(self.T).eval(env) is False
        assert Not(self.F).eval(env) is True
        assert Not(self.N).eval(env) is None

    def test_truthy_where_semantics(self):
        assert truthy(True)
        assert not truthy(False)
        assert not truthy(None)  # NULL is not a match in WHERE


class TestPredicates:
    def test_is_null(self):
        env = Env()
        assert IsNull(Literal(None)).eval(env) is True
        assert IsNull(Literal(1)).eval(env) is False
        assert IsNull(Literal(None), negate=True).eval(env) is False

    def test_between_inclusive(self):
        env = Env()
        assert Between(Literal(5), Literal(5), Literal(9)).eval(env) is True
        assert Between(Literal(9), Literal(5), Literal(9)).eval(env) is True
        assert Between(Literal(10), Literal(5), Literal(9)).eval(env) is False

    def test_between_null(self):
        assert Between(Literal(None), Literal(1), Literal(2)).eval(Env()) is None

    def test_not_between(self):
        expr = Between(Literal(10), Literal(5), Literal(9), negate=True)
        assert expr.eval(Env()) is True

    def test_in_list(self):
        env = Env()
        assert InList(Literal(2), [Literal(1), Literal(2)]).eval(env) is True
        assert InList(Literal(3), [Literal(1), Literal(2)]).eval(env) is False

    def test_in_list_negated(self):
        env = Env()
        assert InList(Literal(3), [Literal(1)], negate=True).eval(env) is True
        assert InList(Literal(1), [Literal(1)], negate=True).eval(env) is False

    def test_in_list_with_null_member(self):
        # 3 IN (1, NULL) is NULL per SQL
        expr = InList(Literal(3), [Literal(1), Literal(None)])
        assert expr.eval(Env()) is None


class TestLike:
    def test_percent_wildcard(self):
        expr = Like(Literal("20.1.5001"), Literal("20.%"))
        assert expr.eval(Env()) is True

    def test_paper_pattern(self):
        expr = Like(Column("tagid", "r"), Literal("20.%.%"))
        assert expr.eval(env_with(tagid="20.7.999")) is True
        assert expr.eval(env_with(tagid="21.7.999")) is False

    def test_underscore_wildcard(self):
        assert Like(Literal("cat"), Literal("c_t")).eval(Env()) is True
        assert Like(Literal("cart"), Literal("c_t")).eval(Env()) is False

    def test_special_chars_escaped(self):
        # The '.' in EPC patterns must match literally, not as regex-any.
        assert Like(Literal("20x1"), Literal("20.1")).eval(Env()) is False
        assert Like(Literal("20.1"), Literal("20.1")).eval(Env()) is True

    def test_not_like(self):
        expr = Like(Literal("abc"), Literal("z%"), negate=True)
        assert expr.eval(Env()) is True

    def test_null_operand(self):
        assert Like(Literal(None), Literal("a%")).eval(Env()) is None

    def test_pattern_change_recompiles(self):
        pattern_col = Column("tagid", "r")
        expr = Like(Literal("abc"), pattern_col)
        assert expr.eval(env_with(tagid="a%")) is True
        assert expr.eval(env_with(tagid="z%")) is False

    def test_pattern_memoized_across_nodes(self):
        # The module-level memo means two Like nodes (e.g. the same EPC
        # prefix in two registered queries) share one compiled regex.
        assert Like._regex("20.%.5001") is Like._regex("20.%.5001")
        first = Like(Literal("20.1.5001"), Literal("20.%.5001"))
        second = Like(Literal("20.2.5001"), Literal("20.%.5001"))
        assert first.eval(Env()) is True and second.eval(Env()) is True
        assert first._compiled[1] is second._compiled[1]


class TestFunctionsAndCase:
    def test_function_call(self):
        expr = FunctionCall("upper", [Literal("abc")])
        assert expr.eval(Env(functions=default_functions())) == "ABC"

    def test_unknown_function(self):
        with pytest.raises(UnknownFunctionError):
            FunctionCall("nope", []).eval(Env())

    def test_case_branches(self):
        expr = Case(
            [(Literal(False), Literal("a")), (Literal(True), Literal("b"))],
            Literal("z"),
        )
        assert expr.eval(Env()) == "b"

    def test_case_default(self):
        expr = Case([(Literal(False), Literal("a"))], Literal("z"))
        assert expr.eval(Env()) == "z"

    def test_case_no_default_yields_null(self):
        expr = Case([(Literal(False), Literal("a"))])
        assert expr.eval(Env()) is None


class TestStructure:
    def test_references_collects_columns(self):
        expr = And(
            BinaryOp("=", Column("a", "x"), Column("b", "y")),
            Like(Column("c"), Literal("%")),
        )
        refs = set(expr.references())
        assert ("x", "a") in refs and ("y", "b") in refs and (None, "c") in refs

    def test_walk_visits_all_nodes(self):
        expr = And(Literal(1), Or(Literal(2), Not(Literal(3))))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds.count("Literal") == 3

    def test_conjoin_empty_is_true(self):
        assert conjoin([]).eval(Env()) is True

    def test_conjoin_single_passthrough(self):
        lit = Literal(5)
        assert conjoin([lit]) is lit

    def test_subquery_predicate(self):
        probe_calls = []

        def probe(env):
            probe_calls.append(env)
            return True

        assert SubqueryPredicate(probe).eval(Env()) is True
        assert SubqueryPredicate(probe, negate=True).eval(Env()) is False
        assert len(probe_calls) == 2
