"""Tests for ad-hoc snapshot SQL (Engine.enable_history + Engine.snapshot).

The paper's section 2.1 "Ad-hoc Queries": current-state questions answered
from live stream state, in SQL, without persisting anything.
"""

import pytest

from repro.dsms import Engine
from repro.dsms.errors import EslSemanticError


@pytest.fixture
def tracked(engine):
    engine.create_stream(
        "locs", "patient str, location str, tagtime float"
    )
    engine.enable_history("locs", duration=600.0)
    rows = [
        ("p1", "er", 0.0), ("p2", "icu", 10.0), ("p1", "ward", 20.0),
        ("p3", "er", 30.0),
    ]
    for patient, location, ts in rows:
        engine.push(
            "locs",
            {"patient": patient, "location": location, "tagtime": ts},
            ts=ts,
        )
    return engine


class TestSnapshotQueries:
    def test_filter_projection(self, tracked):
        rows = tracked.snapshot(
            "SELECT patient, tagtime FROM locs WHERE location = 'er'"
        )
        assert rows == [
            {"patient": "p1", "tagtime": 0.0},
            {"patient": "p3", "tagtime": 30.0},
        ]

    def test_select_star(self, tracked):
        rows = tracked.snapshot("SELECT * FROM locs")
        assert len(rows) == 4
        assert rows[0]["patient"] == "p1"

    def test_aggregate(self, tracked):
        rows = tracked.snapshot("SELECT count(patient), max(tagtime) FROM locs")
        assert rows == [{"count_patient": 4, "max_tagtime": 30.0}]

    def test_group_by(self, tracked):
        rows = tracked.snapshot(
            "SELECT location, count(patient) FROM locs GROUP BY location"
        )
        counts = {row["location"]: row["count_patient"] for row in rows}
        assert counts == {"er": 2, "icu": 1, "ward": 1}

    def test_having(self, tracked):
        rows = tracked.snapshot(
            "SELECT location, count(patient) FROM locs "
            "GROUP BY location HAVING count(patient) > 1"
        )
        assert rows == [{"location": "er", "count_patient": 2}]

    def test_window_retention_applies(self, tracked):
        tracked.push(
            "locs",
            {"patient": "p9", "location": "er", "tagtime": 10000.0},
            ts=10000.0,
        )
        rows = tracked.snapshot("SELECT patient FROM locs")
        # Everything older than 600s fell out of the history.
        assert rows == [{"patient": "p9"}]

    def test_stream_table_join(self, tracked):
        tracked.create_table("staff", "patient str, doctor str")
        tracked.query("INSERT INTO staff VALUES ('p1', 'dr-a'), ('p2', 'dr-b')")
        rows = tracked.snapshot(
            "SELECT L.patient, S.doctor FROM locs AS L, staff AS S "
            "WHERE L.patient = S.patient AND L.location = 'ward'"
        )
        assert rows == [{"patient": "p1", "doctor": "dr-a"}]

    def test_exists_over_table(self, tracked):
        tracked.create_table("authorized", "patient str")
        tracked.query("INSERT INTO authorized VALUES ('p1')")
        rows = tracked.snapshot(
            "SELECT L.patient FROM locs AS L WHERE NOT EXISTS "
            "(SELECT patient FROM authorized AS a WHERE a.patient = L.patient)"
        )
        assert {row["patient"] for row in rows} == {"p2", "p3"}

    def test_snapshot_does_not_register_queries(self, tracked):
        before = len(tracked.queries)
        tracked.snapshot("SELECT patient FROM locs")
        assert len(tracked.queries) == before

    def test_repeated_snapshots_see_updates(self, tracked):
        first = tracked.snapshot("SELECT count(*) FROM locs")
        tracked.push(
            "locs", {"patient": "p4", "location": "er", "tagtime": 40.0},
            ts=40.0,
        )
        second = tracked.snapshot("SELECT count(*) FROM locs")
        assert second[0]["count_all"] == first[0]["count_all"] + 1

    def test_aggregate_on_empty_history(self, engine):
        engine.create_stream("s", "v int")
        engine.enable_history("s")
        rows = engine.snapshot("SELECT count(v), sum(v) FROM s")
        assert rows == [{"count_v": 0, "sum_v": None}]

    def test_udf_in_snapshot(self, tracked):
        rows = tracked.snapshot(
            "SELECT upper(location) AS L FROM locs WHERE patient = 'p2'"
        )
        assert rows == [{"L": "ICU"}]


class TestSnapshotErrors:
    def test_requires_history(self, engine):
        engine.create_stream("s", "v int")
        with pytest.raises(EslSemanticError, match="enable_history"):
            engine.snapshot("SELECT v FROM s")

    def test_rejects_temporal(self, tracked):
        tracked.create_stream("s2", "patient str, tagtime float")
        tracked.enable_history("s2")
        with pytest.raises(EslSemanticError, match="continuous"):
            tracked.snapshot(
                "SELECT L.patient FROM locs AS L, s2 WHERE SEQ(L, S2)"
            )

    def test_rejects_insert(self, tracked):
        with pytest.raises(EslSemanticError):
            tracked.snapshot("INSERT INTO x SELECT patient FROM locs")

    def test_rejects_multiple_statements(self, tracked):
        with pytest.raises(EslSemanticError):
            tracked.snapshot(
                "SELECT patient FROM locs; SELECT patient FROM locs"
            )

    def test_rejects_window_clause(self, tracked):
        with pytest.raises(EslSemanticError, match="window"):
            tracked.snapshot(
                "SELECT patient FROM TABLE(locs OVER "
                "(RANGE 5 SECONDS PRECEDING CURRENT)) AS w"
            )

    def test_rejects_stream_exists(self, tracked):
        tracked.create_stream("other", "patient str")
        tracked.enable_history("other")
        with pytest.raises(EslSemanticError, match="tables"):
            tracked.snapshot(
                "SELECT patient FROM locs AS L WHERE EXISTS "
                "(SELECT * FROM other)"
            )

    def test_unknown_source(self, tracked):
        with pytest.raises(EslSemanticError):
            tracked.snapshot("SELECT x FROM nothing")

    def test_enable_history_idempotent(self, tracked):
        view1 = tracked.enable_history("locs")
        view2 = tracked.enable_history("locs")
        assert view1 is view2
