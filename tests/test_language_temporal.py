"""Integration tests: temporal queries through the full language stack."""

import pytest

from repro.dsms import Engine
from repro.dsms.errors import EslSemanticError


@pytest.fixture
def quality(four_streams_engine):
    return four_streams_engine


def feed(engine, trace):
    for stream, tag, ts in trace:
        engine.push(
            stream, {"readerid": stream, "tagid": tag, "tagtime": ts}, ts=ts
        )


GOOD_RUN = [
    ("c1", "a", 1.0), ("c2", "a", 2.0), ("c3", "a", 3.0), ("c4", "a", 4.0),
]


class TestSeqQueries:
    def test_plain_seq(self, quality):
        handle = quality.query(
            "SELECT C1.tagid FROM c1, c2, c3, c4 WHERE SEQ(C1, C2, C3, C4)"
        )
        feed(quality, GOOD_RUN)
        assert handle.rows() == [{"tagid": "a"}]

    def test_mode_clause(self, quality):
        handle = quality.query(
            "SELECT C1.tagtime, C4.tagtime FROM c1, c2, c3, c4 "
            "WHERE SEQ(C1, C2, C3, C4) MODE RECENT"
        )
        feed(quality, GOOD_RUN)
        assert len(handle.rows()) == 1

    def test_partition_hoisting_used(self, quality):
        handle = quality.query(
            "SELECT C1.tagid FROM c1, c2, c3, c4 "
            "WHERE SEQ(C1, C2, C3, C4) MODE RECENT "
            "AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid"
        )
        operator = handle.operator
        assert operator.partition_by is not None
        # Interleave two products; each completes independently.
        feed(quality, [
            ("c1", "a", 1.0), ("c1", "b", 2.0),
            ("c2", "a", 3.0), ("c2", "b", 4.0),
            ("c3", "a", 5.0), ("c3", "b", 6.0),
            ("c4", "a", 7.0), ("c4", "b", 8.0),
        ])
        assert sorted(r["tagid"] for r in handle.rows()) == ["a", "b"]

    def test_join_conditions_filter_mismatches(self, quality):
        handle = quality.query(
            "SELECT C1.tagid FROM c1, c2, c3, c4 WHERE SEQ(C1, C2, C3, C4) "
            "AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid"
        )
        feed(quality, [
            ("c1", "a", 1.0), ("c2", "b", 2.0), ("c3", "a", 3.0),
            ("c4", "a", 4.0),
        ])
        assert handle.rows() == []

    def test_operator_window_via_sql(self, quality):
        handle = quality.query(
            "SELECT C1.tagid FROM c1, c2, c3, c4 "
            "WHERE SEQ(C1, C2, C3, C4) OVER [30 MINUTES PRECEDING C4]"
        )
        feed(quality, [
            ("c1", "a", 0.0), ("c2", "a", 100.0), ("c3", "a", 200.0),
            ("c4", "a", 5000.0),  # > 1800s after c1
        ])
        assert handle.rows() == []

    def test_unknown_window_anchor_rejected(self, quality):
        with pytest.raises(EslSemanticError):
            quality.query(
                "SELECT C1.tagid FROM c1, c2 WHERE SEQ(C1, C2) "
                "OVER [5 SECONDS PRECEDING C9]"
            )

    def test_bad_mode_rejected(self, quality):
        with pytest.raises(EslSemanticError):
            quality.query(
                "SELECT C1.tagid FROM c1, c2 WHERE SEQ(C1, C2) MODE BOGUS"
            )

    def test_insert_into_derived_stream(self, quality):
        quality.query(
            "INSERT INTO done SELECT C1.tagid, C4.tagtime "
            "FROM c1, c2, c3, c4 WHERE SEQ(C1, C2, C3, C4)"
        )
        got = quality.collect("done")
        feed(quality, GOOD_RUN)
        assert got.rows() == [{"tagid": "a", "tagtime": 4.0}]

    def test_select_star_flattens_aliases(self, quality):
        handle = quality.query(
            "SELECT * FROM c1, c4 WHERE SEQ(C1, C4)"
        )
        feed(quality, [("c1", "a", 1.0), ("c4", "a", 2.0)])
        row = handle.rows()[0]
        assert row["C1_tagid"] == "a"  # alias case from the query text
        assert row["C4_tagtime"] == 2.0


class TestStarQueries:
    @pytest.fixture
    def packing(self, engine):
        engine.create_stream("r1", "readerid str, tagid str, tagtime float")
        engine.create_stream("r2", "readerid str, tagid str, tagtime float")
        return engine

    def feed_case(self, engine, product_times, case_time):
        for ts in product_times:
            engine.push(
                "r1", {"readerid": "r1", "tagid": f"p{ts:g}", "tagtime": ts},
                ts=ts,
            )
        engine.push(
            "r2", {"readerid": "r2", "tagid": "case", "tagtime": case_time},
            ts=case_time,
        )

    def test_star_aggregates_in_select(self, packing):
        handle = packing.query(
            "SELECT FIRST(R1*).tagtime AS first_t, COUNT(R1*) AS n, "
            "LAST(R1*).tagtime AS last_t, R2.tagid FROM r1, r2 "
            "WHERE SEQ(R1*, R2) MODE CHRONICLE"
        )
        self.feed_case(packing, [1.0, 1.5, 2.0], 3.0)
        assert handle.rows() == [
            {"first_t": 1.0, "n": 3, "last_t": 2.0, "tagid": "case"}
        ]

    def test_gap_constraint_hoisted(self, packing):
        handle = packing.query(
            "SELECT COUNT(R1*) AS n FROM r1, r2 WHERE SEQ(R1*, R2) "
            "MODE CHRONICLE "
            "AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS"
        )
        assert handle.operator.args[0].gap_check is not None
        self.feed_case(packing, [0.0, 0.5, 3.0], 3.5)  # gap splits the runs
        # CHRONICLE matches the earliest run [0.0, 0.5] (the gap constraint
        # kept 3.0 out of it), so the count is 2, not 3.
        assert handle.rows()[0]["n"] == 2

    def test_last_constraint_checked(self, packing):
        handle = packing.query(
            "SELECT COUNT(R1*) AS n FROM r1, r2 WHERE SEQ(R1*, R2) "
            "MODE CHRONICLE AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS"
        )
        self.feed_case(packing, [0.0], 100.0)  # far too late
        assert handle.rows() == []

    def test_multi_return_rows(self, packing):
        handle = packing.query(
            "SELECT R1.tagid, R2.tagid FROM r1, r2 "
            "WHERE SEQ(R1*, R2) MODE CHRONICLE"
        )
        self.feed_case(packing, [1.0, 2.0], 3.0)
        assert [r["tagid"] for r in handle.rows()] == ["p1", "p2"]
        assert all(r["tagid_2"] == "case" for r in handle.rows())

    def test_gap_on_unstarred_arg_rejected(self, packing):
        with pytest.raises(EslSemanticError):
            packing.query(
                "SELECT R2.tagid FROM r1, r2 WHERE SEQ(R1, R2) "
                "AND R2.tagtime - R2.previous.tagtime <= 1 SECONDS"
            )


class TestExceptionQueries:
    @pytest.fixture
    def lab(self, engine):
        for name in ("a1", "a2", "a3"):
            engine.create_stream(name, "tagid str, tagtime float")
        return engine

    def feed(self, engine, trace):
        for stream, ts in trace:
            engine.push(stream, {"tagid": "s", "tagtime": ts}, ts=ts)

    def test_exception_seq_wrong_order(self, lab):
        handle = lab.query(
            "SELECT A1.tagid, A2.tagid, A3.tagid FROM a1, a2, a3 "
            "WHERE EXCEPTION_SEQ(A1, A2, A3)"
        )
        self.feed(lab, [("a1", 1.0), ("a3", 2.0)])
        rows = handle.rows()
        assert len(rows) == 1
        assert rows[0]["tagid"] == "s"       # A1 bound
        assert rows[0]["tagid_2"] is None    # A2 never bound -> NULL

    def test_exception_seq_timeout_via_heartbeat(self, lab):
        handle = lab.query(
            "SELECT A1.tagid FROM a1, a2, a3 "
            "WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]"
        )
        self.feed(lab, [("a1", 0.0), ("a2", 10.0)])
        assert handle.rows() == []
        lab.advance_time(4000.0)
        assert len(handle.rows()) == 1

    def test_completed_sequences_not_reported(self, lab):
        handle = lab.query(
            "SELECT A1.tagid FROM a1, a2, a3 WHERE EXCEPTION_SEQ(A1, A2, A3)"
        )
        self.feed(lab, [("a1", 1.0), ("a2", 2.0), ("a3", 3.0)])
        assert handle.rows() == []

    def test_clevel_threshold(self, lab):
        handle = lab.query(
            "SELECT A1.tagid FROM a1, a2, a3 "
            "WHERE (CLEVEL_SEQ(A1, A2, A3)) < 2"
        )
        self.feed(lab, [
            ("a1", 1.0), ("a2", 2.0), ("a1", 3.0),  # level-2 failure: >= 2
            ("a2", 4.0), ("a3", 5.0),                # restarted run completes
            ("a3", 100.0),                            # wrong start: level 0
        ])
        # Only the level-0 wrong start satisfies CLEVEL < 2.
        assert len(handle.rows()) == 1

    def test_clevel_equals_n_selects_completions(self, lab):
        handle = lab.query(
            "SELECT A1.tagid FROM a1, a2, a3 "
            "WHERE (CLEVEL_SEQ(A1, A2, A3)) = 3"
        )
        self.feed(lab, [("a1", 1.0), ("a2", 2.0), ("a3", 3.0)])
        assert len(handle.rows()) == 1

    def test_exception_mode_recent(self, lab):
        handle = lab.query(
            "SELECT A1.tagid FROM a1, a2, a3 "
            "WHERE EXCEPTION_SEQ(A1, A2, A3) MODE RECENT"
        )
        # (A, B) + B -> exception; replacement B then C completes silently.
        self.feed(lab, [("a1", 1.0), ("a2", 2.0), ("a2", 3.0), ("a3", 4.0)])
        assert len(handle.rows()) == 1

    def test_window_following_mid_anchor(self, lab):
        handle = lab.query(
            "SELECT A1.tagid FROM a1, a2, a3 "
            "WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A2]"
        )
        self.feed(lab, [("a1", 0.0)])
        lab.advance_time(10000.0)  # no A2 yet: no timer, no exception
        assert handle.rows() == []
        self.feed(lab, [("a2", 10000.0)])
        lab.advance_time(20000.0)
        assert len(handle.rows()) == 1
