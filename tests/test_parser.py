"""Unit tests for the ESL-EV parser."""

import pytest

from repro.core.language.ast_nodes import (
    CreateAggregate,
    CreateStream,
    CreateTable,
    DurationLiteral,
    ExistsPredicate,
    InsertValues,
    PreviousRef,
    SelectStatement,
    SeqPredicate,
    StarAggregate,
)
from repro.core.language.parser import (
    AggregateCall,
    parse_expression,
    parse_program,
)
from repro.dsms.errors import EslSyntaxError
from repro.dsms.expressions import (
    And,
    Between,
    BinaryOp,
    Case,
    Column,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)


def parse_one(text):
    statements = parse_program(text)
    assert len(statements) == 1
    return statements[0]


class TestDdl:
    def test_create_stream(self):
        stmt = parse_one("CREATE STREAM readings(reader_id str, tag_id str)")
        assert isinstance(stmt, CreateStream)
        assert stmt.name == "readings"
        assert stmt.columns == (("reader_id", "str"), ("tag_id", "str"))

    def test_create_stream_untyped(self):
        stmt = parse_one("CREATE STREAM s(a, b)")
        assert stmt.columns == (("a", None), ("b", None))

    def test_create_table(self):
        stmt = parse_one("CREATE TABLE t(x int)")
        assert isinstance(stmt, CreateTable)

    def test_create_aggregate(self):
        stmt = parse_one("""
        CREATE AGGREGATE myavg(v) (
            INITIALIZE: cnt := 1, total := v;
            ITERATE: cnt := cnt + 1, total := total + v;
            TERMINATE: RETURN total / cnt;
        )
        """)
        assert isinstance(stmt, CreateAggregate)
        assert stmt.param == "v"
        assert len(stmt.init_block) == 2
        assert len(stmt.iterate_block) == 2

    def test_create_requires_known_kind(self):
        with pytest.raises(EslSyntaxError):
            parse_program("CREATE INDEX foo(a)")


class TestInsert:
    def test_insert_values(self):
        stmt = parse_one("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, InsertValues)
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_one("INSERT INTO out SELECT a FROM s")
        assert isinstance(stmt, SelectStatement)
        assert stmt.insert_into == "out"


class TestSelectShape:
    def test_select_star(self):
        stmt = parse_one("SELECT * FROM s")
        assert stmt.select_star

    def test_select_items_with_aliases(self):
        stmt = parse_one("SELECT a AS x, b y, c FROM s")
        assert [item.alias for item in stmt.select_items] == ["x", "y", None]

    def test_from_aliases(self):
        stmt = parse_one("SELECT a FROM s1 AS x, s2 y, s3")
        assert stmt.aliases() == ["x", "y", "s3"]

    def test_where_group_having(self):
        stmt = parse_one(
            "SELECT count(a) FROM s WHERE a > 1 GROUP BY b HAVING count(a) > 2"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_multiple_statements(self):
        statements = parse_program("CREATE STREAM s(a); SELECT a FROM s;")
        assert len(statements) == 2

    def test_empty_program_rejected(self):
        with pytest.raises(EslSyntaxError):
            parse_program(" ; ; ")


class TestFromWindows:
    def test_table_fn_window(self):
        stmt = parse_one(
            "SELECT * FROM TABLE(readings OVER (RANGE 1 SECONDS PRECEDING "
            "CURRENT)) AS r2"
        )
        item = stmt.from_items[0]
        assert item.alias == "r2"
        assert item.window.kind == "range"
        assert item.window.preceding == 1.0
        assert item.window.anchor == "CURRENT"

    def test_rows_window(self):
        stmt = parse_one("SELECT * FROM TABLE(s OVER (ROWS 10 PRECEDING)) AS x")
        assert stmt.from_items[0].window.kind == "rows"
        assert stmt.from_items[0].window.preceding == 10

    def test_unbounded_window(self):
        stmt = parse_one("SELECT * FROM TABLE(s OVER (RANGE UNBOUNDED PRECEDING)) x")
        assert stmt.from_items[0].window.preceding is None

    def test_symmetric_bracket_window(self):
        stmt = parse_one(
            "SELECT * FROM tag_readings AS item OVER "
            "[1 MINUTES PRECEDING AND FOLLOWING person]"
        )
        window = stmt.from_items[0].window
        assert window.preceding == 60.0
        assert window.following == 60.0
        assert window.anchor == "person"
        assert window.symmetric

    def test_following_only_window(self):
        stmt = parse_one("SELECT * FROM s AS x OVER [30 SECONDS FOLLOWING y]")
        window = stmt.from_items[0].window
        assert window.preceding == 0.0
        assert window.following == 30.0

    def test_bad_unit_rejected(self):
        with pytest.raises(EslSyntaxError):
            parse_one("SELECT * FROM s OVER [5 parsecs PRECEDING x]")


class TestExpressions:
    def test_precedence_or_and(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.operands[1], And)

    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_parens_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_not(self):
        assert isinstance(parse_expression("NOT a = 1"), Not)

    def test_comparison_chain(self):
        expr = parse_expression("a.x <= b.y")
        assert expr.op == "<="
        assert isinstance(expr.left, Column) and expr.left.alias == "a"

    def test_like(self):
        expr = parse_expression("tid LIKE '20.%'")
        assert isinstance(expr, Like)

    def test_not_like(self):
        expr = parse_expression("tid NOT LIKE '20.%'")
        assert isinstance(expr, Like) and expr.negate

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expr, Between)

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.options) == 3

    def test_is_null(self):
        assert isinstance(parse_expression("x IS NULL"), IsNull)
        expr = parse_expression("x IS NOT NULL")
        assert expr.negate

    def test_case(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, Case)

    def test_literals(self):
        assert parse_expression("TRUE").value is True
        assert parse_expression("NULL").value is None
        assert parse_expression("'str'").value == "str"

    def test_unary_minus(self):
        from repro.dsms.expressions import Env
        assert parse_expression("-5 + 1").eval(Env()) == -4

    def test_duration_literal(self):
        expr = parse_expression("5 SECONDS")
        assert isinstance(expr, DurationLiteral)
        assert expr.seconds == 5.0
        assert parse_expression("30 MINUTES").seconds == 1800.0

    def test_function_call(self):
        expr = parse_expression("extract_serial(tid)")
        assert isinstance(expr, FunctionCall)

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr, AggregateCall)
        assert expr.name == "count(*)"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(EslSyntaxError):
            parse_expression("1 + 2 banana oops")


class TestTemporalSyntax:
    def test_seq_basic(self):
        stmt = parse_one("SELECT a FROM c1, c2 WHERE SEQ(C1, C2)")
        pred = stmt.where
        assert isinstance(pred, SeqPredicate)
        assert [a.name for a in pred.args] == ["C1", "C2"]

    def test_seq_with_star(self):
        stmt = parse_one("SELECT a FROM r1, r2 WHERE SEQ(R1*, R2)")
        assert stmt.where.args[0].starred
        assert not stmt.where.args[1].starred

    def test_seq_with_window_and_mode(self):
        stmt = parse_one(
            "SELECT a FROM c1, c4 WHERE SEQ(C1, C4) "
            "OVER [30 MINUTES PRECEDING C4] MODE RECENT"
        )
        pred = stmt.where
        assert pred.window.seconds == 1800.0
        assert pred.window.direction == "preceding"
        assert pred.window.anchor == "C4"
        assert pred.mode == "RECENT"

    def test_mode_before_over(self):
        stmt = parse_one(
            "SELECT a FROM r1, r2 WHERE SEQ(R1, R2) MODE CHRONICLE "
            "OVER [5 SECONDS PRECEDING R2]"
        )
        assert stmt.where.mode == "CHRONICLE"
        assert stmt.where.window is not None

    def test_exception_seq_following(self):
        stmt = parse_one(
            "SELECT x FROM a1, a2, a3 WHERE EXCEPTION_SEQ(A1, A2, A3) "
            "OVER [1 HOURS FOLLOWING A1]"
        )
        pred = stmt.where
        assert pred.op_name == "EXCEPTION_SEQ"
        assert pred.window.direction == "following"
        assert pred.window.seconds == 3600.0

    def test_clevel_comparison(self):
        stmt = parse_one(
            "SELECT x FROM a1, a2 WHERE (CLEVEL_SEQ(A1, A2) "
            "OVER [1 HOURS FOLLOWING A1]) < 2"
        )
        assert isinstance(stmt.where, BinaryOp)
        assert isinstance(stmt.where.left, SeqPredicate)

    def test_seq_inside_and(self):
        stmt = parse_one(
            "SELECT a FROM c1, c2 WHERE SEQ(C1, C2) AND C1.tagid = C2.tagid"
        )
        assert isinstance(stmt.where, And)

    def test_star_aggregates(self):
        stmt = parse_one(
            "SELECT FIRST(R1*).tagtime, COUNT(R1*), LAST(R1*).tagid "
            "FROM r1, r2 WHERE SEQ(R1*, R2)"
        )
        first, count, last = (item.expr for item in stmt.select_items)
        assert isinstance(first, StarAggregate) and first.func == "first"
        assert first.field == "tagtime"
        assert isinstance(count, StarAggregate) and count.field is None
        assert isinstance(last, StarAggregate) and last.func == "last"

    def test_previous_ref(self):
        expr = parse_expression("R1.tagtime - R1.previous.tagtime")
        assert isinstance(expr.right, PreviousRef)
        assert expr.right.alias == "R1"
        assert expr.right.field == "tagtime"

    def test_exists_subquery(self):
        stmt = parse_one(
            "SELECT a FROM s WHERE NOT EXISTS (SELECT b FROM t WHERE b = a)"
        )
        assert isinstance(stmt.where, ExistsPredicate)
        assert stmt.where.negate

    def test_exists_not_negated(self):
        stmt = parse_one("SELECT a FROM s WHERE EXISTS (SELECT b FROM t)")
        assert not stmt.where.negate
