"""Unit tests for the engine: catalogs, time discipline, trace feeding."""

import pytest

from repro.dsms import Engine
from repro.dsms.errors import (
    ClockError,
    EslSemanticError,
    UnknownStreamError,
)


class TestCatalogs:
    def test_create_stream_and_table(self, engine):
        engine.create_stream("s", "a int")
        engine.create_table("t", "b str")
        assert engine.stream("s").name == "s"
        assert engine.table("t").name == "t"

    def test_unknown_stream(self, engine):
        with pytest.raises(UnknownStreamError):
            engine.stream("nope")

    def test_register_udf(self, engine):
        engine.register_udf("plus1", lambda v: v + 1)
        assert engine.functions.get("plus1")(1) == 2

    def test_register_uda(self, engine):
        from repro.dsms import uda_from_callables

        engine.register_uda(
            "always42",
            uda_from_callables("always42", lambda: None, lambda s, v: s,
                               lambda s: 42),
        )
        assert engine.aggregates.create("always42").compute([1]) == 42


class TestTimeDiscipline:
    def test_push_advances_clock(self, engine):
        engine.create_stream("s", "a")
        engine.push("s", {"a": 1}, ts=5.0)
        assert engine.now == 5.0

    def test_push_backwards_rejected(self, engine):
        engine.create_stream("s", "a")
        engine.push("s", {"a": 1}, ts=5.0)
        with pytest.raises(ClockError):
            engine.push("s", {"a": 2}, ts=4.0)

    def test_timers_fire_before_later_tuple_is_seen(self, engine):
        engine.create_stream("s", "a")
        order = []
        engine.stream("s").subscribe(lambda t: order.append(("tuple", t.ts)))
        engine.clock.schedule(10.0, lambda t: order.append(("timer", t)))
        engine.push("s", {"a": 1}, ts=5.0)
        engine.push("s", {"a": 2}, ts=15.0)
        assert order == [("tuple", 5.0), ("timer", 10.0), ("tuple", 15.0)]

    def test_advance_time_heartbeat(self, engine):
        fired = []
        engine.clock.schedule(10.0, fired.append)
        assert engine.advance_time(20.0) == 1
        assert fired == [10.0]

    def test_positional_push(self, engine):
        engine.create_stream("s", "a, b")
        got = engine.collect("s")
        engine.push("s", [1, 2], ts=0.0)
        assert got.rows() == [{"a": 1, "b": 2}]


class TestTraces:
    def test_run_trace(self, engine):
        engine.create_stream("s", "a")
        got = engine.collect("s")
        count = engine.run_trace([
            ("s", {"a": 1}, 1.0),
            ("s", {"a": 2}, 2.0),
        ])
        assert count == 2
        assert [r["a"] for r in got.rows()] == [1, 2]

    def test_flush_fires_remaining_timers(self, engine):
        fired = []
        engine.clock.schedule(1000.0, fired.append)
        engine.flush()
        assert fired == [1000.0]


class TestCollector:
    def test_attach_detach(self, engine):
        engine.create_stream("s", "a")
        collector = engine.collect("s")
        engine.push("s", {"a": 1}, ts=0.0)
        collector.detach()
        engine.push("s", {"a": 2}, ts=1.0)
        assert len(collector) == 1

    def test_clear(self, engine):
        engine.create_stream("s", "a")
        collector = engine.collect("s")
        engine.push("s", {"a": 1}, ts=0.0)
        collector.clear()
        assert len(collector) == 0

    def test_iteration(self, engine):
        engine.create_stream("s", "a")
        collector = engine.collect("s")
        engine.push("s", {"a": 1}, ts=0.0)
        assert [t["a"] for t in collector] == [1]


class TestQueryHandles:
    def test_results_requires_collector(self, engine):
        engine.create_stream("src", "a")
        engine.create_stream("dst", "a")
        handle = engine.query("INSERT INTO dst SELECT a FROM src")
        with pytest.raises(EslSemanticError):
            handle.results

    def test_stop_detaches(self, engine):
        engine.create_stream("src", "a")
        handle = engine.query("SELECT a FROM src")
        engine.push("src", {"a": 1}, ts=0.0)
        handle.stop()
        engine.push("src", {"a": 2}, ts=1.0)
        assert len(handle.results) == 1

    def test_stop_idempotent(self, engine):
        engine.create_stream("src", "a")
        handle = engine.query("SELECT a FROM src")
        handle.stop()
        handle.stop()
        assert handle.stopped

    def test_stop_all(self, engine):
        engine.create_stream("src", "a")
        first = engine.query("SELECT a FROM src")
        second = engine.query("SELECT a FROM src")
        engine.stop_all()
        assert first.stopped and second.stopped

    def test_clear_results(self, engine):
        engine.create_stream("src", "a")
        handle = engine.query("SELECT a FROM src")
        engine.push("src", {"a": 1}, ts=0.0)
        handle.clear()
        assert handle.rows() == []

    def test_query_names_autogenerate(self, engine):
        engine.create_stream("src", "a")
        first = engine.query("SELECT a FROM src")
        second = engine.query("SELECT a FROM src")
        assert first.name != second.name
