"""Unit tests for user-defined aggregates (UDAs) and functions (UDFs)."""

import pytest

from repro.dsms.errors import EslSemanticError, UnknownFunctionError
from repro.dsms.expressions import BinaryOp, Column, Literal
from repro.dsms.functions import default_functions
from repro.dsms.uda import SqlUda, uda_from_callables
from repro.dsms.udf import UdfRegistry


class TestCallableUda:
    def test_range_aggregate(self):
        factory = uda_from_callables(
            "vrange",
            initialize=lambda: (None, None),
            iterate=lambda s, v: (
                v if s[0] is None else min(s[0], v),
                v if s[1] is None else max(s[1], v),
            ),
            terminate=lambda s: None if s[0] is None else s[1] - s[0],
        )
        assert factory().compute([3, 9, 1, 7]) == 8
        assert factory().compute([]) is None

    def test_each_factory_call_fresh(self):
        factory = uda_from_callables(
            "acc",
            initialize=lambda: [],
            iterate=lambda s, v: (s.append(v), s)[1],
            terminate=len,
        )
        assert factory().compute([1, 2]) == 2
        assert factory().compute([1]) == 1  # not 3: state did not leak


class TestSqlUda:
    def make_myavg(self):
        # CREATE AGGREGATE myavg(v): INITIALIZE cnt:=1, total:=v;
        # ITERATE cnt:=cnt+1, total:=total+v; TERMINATE total/cnt
        return SqlUda(
            "myavg",
            initialize=[("cnt", Literal(1)), ("total", Column("v"))],
            iterate=[
                ("cnt", BinaryOp("+", Column("cnt"), Literal(1))),
                ("total", BinaryOp("+", Column("total"), Column("v"))),
            ],
            terminate=BinaryOp("/", Column("total"), Column("cnt")),
            param="v",
        )

    def test_average(self):
        agg = self.make_myavg().factory()()
        assert agg.compute([2, 4, 6]) == 4

    def test_empty_input_yields_null(self):
        agg = self.make_myavg().factory()()
        assert agg.compute([]) is None

    def test_initialize_runs_on_first_value(self):
        agg = self.make_myavg().factory()()
        assert agg.compute([10]) == 10

    def test_unknown_state_var_raises(self):
        from repro.dsms.errors import EslRuntimeError

        uda = SqlUda(
            "bad",
            initialize=[("a", Column("missing_var"))],
            iterate=[],
            terminate=Column("a"),
        )
        agg = uda.factory()()
        with pytest.raises(EslRuntimeError):
            agg.compute([1])

    def test_uda_with_functions(self):
        uda = SqlUda(
            "maxabs",
            initialize=[("m", Column("value"))],
            iterate=[
                (
                    "m",
                    BinaryOp(
                        "+",
                        Literal(0),
                        Column("m"),
                    ),
                )
            ],
            terminate=Column("m"),
            functions=default_functions(),
        )
        assert uda.factory()().compute([5, 1]) == 5


class TestUdfRegistry:
    def test_register_and_call(self):
        registry = UdfRegistry()
        registry.register("double", lambda v: v * 2)
        assert registry.get("double")(4) == 8

    def test_case_insensitive(self):
        registry = UdfRegistry()
        registry.register("MyFn", lambda: 1)
        assert registry.get("myfn")() == 1
        assert "MYFN" in registry

    def test_strict_null_propagation(self):
        registry = UdfRegistry()
        calls = []
        registry.register("probe", lambda v: calls.append(v) or "ran")
        assert registry.get("probe")(None) is None
        assert calls == []  # not invoked

    def test_non_strict_sees_nulls(self):
        registry = UdfRegistry()
        registry.register("nn", lambda v: "saw" if v is None else v, strict=False)
        assert registry.get("nn")(None) == "saw"

    def test_duplicate_rejected_without_replace(self):
        registry = UdfRegistry()
        registry.register("f", lambda: 1)
        with pytest.raises(EslSemanticError):
            registry.register("f", lambda: 2)

    def test_replace(self):
        registry = UdfRegistry()
        registry.register("f", lambda: 1)
        registry.register("f", lambda: 2, replace=True)
        assert registry.get("f")() == 2

    def test_unknown_raises(self):
        with pytest.raises(UnknownFunctionError):
            UdfRegistry().get("nope")

    def test_decorator(self):
        registry = UdfRegistry()

        @registry.udf()
        def triple(v):
            return v * 3

        assert registry.get("triple")(2) == 6

    def test_decorator_custom_name(self):
        registry = UdfRegistry()

        @registry.udf("x3")
        def triple(v):
            return v * 3

        assert registry.get("x3")(3) == 9

    def test_layered_over_builtins(self):
        registry = UdfRegistry(default_functions())
        assert registry.get("upper")("x") == "X"

    def test_engine_registration_shadows_builtin(self):
        from repro.dsms import Engine

        engine = Engine()
        engine.register_udf("upper", lambda v: "shadowed")
        assert engine.functions.get("upper")("x") == "shadowed"
