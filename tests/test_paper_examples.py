"""Integration suite: every example query from the paper, verbatim.

One test class per example (1-8).  Queries are copied from the paper text
(modulo nothing — whitespace included); where the paper gives two variants
(Example 7's aggregated and per-tuple forms, the CLEVEL alternative of the
Example 5 query), both are exercised.
"""

import pytest

from repro.dsms import Engine

# ---------------------------------------------------------------------------
# Example 1 — Duplicate Filtering with Join
# ---------------------------------------------------------------------------


class TestExample1DuplicateFiltering:
    QUERY = """
    INSERT INTO cleaned_readings
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
         (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id
         AND r2.tag_id = r1.tag_id)
    """

    @pytest.fixture
    def setup(self):
        engine = Engine()
        engine.create_stream(
            "readings", "reader_id str, tag_id str, read_time float"
        )
        engine.create_stream(
            "cleaned_readings", "reader_id str, tag_id str, read_time float"
        )
        engine.query(self.QUERY)
        return engine, engine.collect("cleaned_readings")

    def push(self, engine, reader, tag, ts):
        engine.push(
            "readings",
            {"reader_id": reader, "tag_id": tag, "read_time": ts},
            ts=ts,
        )

    def test_repeated_reads_collapse(self, setup):
        engine, out = setup
        for ts in (0.0, 0.2, 0.4, 0.6):
            self.push(engine, "g1", "t1", ts)
        assert len(out) == 1

    def test_sliding_duplicate_chain(self, setup):
        # Each read is within 1s of the previous: the whole chain is one
        # logical reading even though it spans > 1s total.
        engine, out = setup
        for ts in (0.0, 0.8, 1.6, 2.4):
            self.push(engine, "g1", "t1", ts)
        assert len(out) == 1

    def test_reappearance_after_gap_is_new(self, setup):
        engine, out = setup
        self.push(engine, "g1", "t1", 0.0)
        self.push(engine, "g1", "t1", 5.0)
        assert len(out) == 2

    def test_duplicate_readers_distinct(self, setup):
        engine, out = setup
        self.push(engine, "g1", "t1", 0.0)
        self.push(engine, "g2", "t1", 0.1)  # different reader: not a dup
        assert len(out) == 2

    def test_duplicate_tags_distinct(self, setup):
        engine, out = setup
        self.push(engine, "g1", "t1", 0.0)
        self.push(engine, "g1", "t2", 0.1)
        assert len(out) == 2


# ---------------------------------------------------------------------------
# Example 2 — Location Tracking
# ---------------------------------------------------------------------------


class TestExample2LocationTracking:
    QUERY = """
    INSERT INTO object_movement
    SELECT tid, loc, tagtime
    FROM tag_locations WHERE NOT EXISTS
      (SELECT tagid FROM object_movement
       WHERE tagid = tid AND location = loc)
    """

    @pytest.fixture
    def setup(self):
        engine = Engine()
        engine.create_stream(
            "tag_locations", "readerid str, tid str, tagtime float, loc str"
        )
        engine.create_table(
            "object_movement", "tagid str, location str, start_time float"
        )
        engine.query(self.QUERY)
        return engine

    def push(self, engine, tid, loc, ts):
        engine.push(
            "tag_locations",
            {"readerid": "r", "tid": tid, "tagtime": ts, "loc": loc},
            ts=ts,
        )

    def test_first_sighting_recorded(self, setup):
        self.push(setup, "t1", "dock", 1.0)
        assert list(setup.table("object_movement").scan()) == [
            {"tagid": "t1", "location": "dock", "start_time": 1.0}
        ]

    def test_repeat_sighting_suppressed(self, setup):
        self.push(setup, "t1", "dock", 1.0)
        self.push(setup, "t1", "dock", 2.0)
        assert len(setup.table("object_movement")) == 1

    def test_location_change_recorded(self, setup):
        self.push(setup, "t1", "dock", 1.0)
        self.push(setup, "t1", "aisle", 2.0)
        assert len(setup.table("object_movement")) == 2

    def test_tags_tracked_independently(self, setup):
        self.push(setup, "t1", "dock", 1.0)
        self.push(setup, "t2", "dock", 2.0)
        assert len(setup.table("object_movement")) == 2


# ---------------------------------------------------------------------------
# Example 3 — EPC Code Pattern Based Aggregation
# ---------------------------------------------------------------------------


class TestExample3EpcAggregation:
    QUERY = """
    SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
    AND extract_serial(tid) > 5000
    AND extract_serial(tid) < 9999
    """

    @pytest.fixture
    def setup(self):
        engine = Engine()
        engine.create_stream("readings", "reader_id str, tid str, read_time float")
        handle = engine.query(self.QUERY)
        return engine, handle

    def push(self, engine, tid, ts):
        engine.push(
            "readings", {"reader_id": "r", "tid": tid, "read_time": ts}, ts=ts
        )

    def test_matching_epcs_counted(self, setup):
        engine, handle = setup
        self.push(engine, "20.1.6000", 0.0)
        self.push(engine, "20.9.7500", 1.0)
        assert handle.rows()[-1]["count_tid"] == 2

    def test_wrong_company_excluded(self, setup):
        engine, handle = setup
        self.push(engine, "21.1.6000", 0.0)
        assert handle.rows() == []

    def test_open_interval_bounds(self, setup):
        engine, handle = setup
        self.push(engine, "20.1.5000", 0.0)   # not > 5000
        self.push(engine, "20.1.9999", 1.0)   # not < 9999
        self.push(engine, "20.1.5001", 2.0)
        assert handle.rows()[-1]["count_tid"] == 1

    def test_malformed_epc_ignored(self, setup):
        engine, handle = setup
        self.push(engine, "20.garbage", 0.0)
        self.push(engine, "20.1.notanumber", 1.0)
        assert handle.rows() == []


# ---------------------------------------------------------------------------
# Example 6 — Detecting a Sequence with the SEQ Operator (+ window variant)
# ---------------------------------------------------------------------------


class TestExample6QualitySequence:
    QUERY = """
    SELECT C1.tagid, C1.tagtime,
           C2.tagtime, C3.tagtime, C4.tagtime
    FROM C1, C2, C3, C4
    WHERE SEQ(C1, C2, C3, C4)
    AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
    AND C1.tagid=C4.tagid
    """

    WINDOWED = """
    SELECT C4.tagid, C1.tagtime
    FROM C1, C2, C3, C4
    WHERE SEQ(C1, C2, C3, C4)
    OVER [30 MINUTES PRECEDING C4]
    AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
    AND C1.tagid=C4.tagid
    """

    def engine(self):
        engine = Engine()
        for name in ("c1", "c2", "c3", "c4"):
            engine.create_stream(name, "readerid str, tagid str, tagtime float")
        return engine

    def feed(self, engine, trace):
        for stream, tag, ts in trace:
            engine.push(
                stream, {"readerid": stream, "tagid": tag, "tagtime": ts},
                ts=ts,
            )

    def test_full_pass_detected(self):
        engine = self.engine()
        handle = engine.query(self.QUERY)
        self.feed(engine, [("c1", "a", 1), ("c2", "a", 2), ("c3", "a", 3),
                           ("c4", "a", 4)])
        row = handle.rows()[0]
        assert row["tagid"] == "a"
        assert (row["tagtime"], row["tagtime_2"], row["tagtime_3"],
                row["tagtime_4"]) == (1, 2, 3, 4)

    def test_incomplete_pass_not_detected(self):
        engine = self.engine()
        handle = engine.query(self.QUERY)
        self.feed(engine, [("c1", "a", 1), ("c2", "a", 2), ("c4", "a", 4)])
        assert handle.rows() == []

    def test_windowed_variant_rejects_slow_pass(self):
        engine = self.engine()
        handle = engine.query(self.WINDOWED)
        self.feed(engine, [("c1", "a", 0), ("c2", "a", 60), ("c3", "a", 120),
                           ("c4", "a", 2000)])  # 2000s > 30min
        assert handle.rows() == []

    def test_windowed_variant_accepts_fast_pass(self):
        engine = self.engine()
        handle = engine.query(self.WINDOWED)
        self.feed(engine, [("c1", "a", 0), ("c2", "a", 60), ("c3", "a", 120),
                           ("c4", "a", 1700)])
        assert len(handle.rows()) == 1


# ---------------------------------------------------------------------------
# Example 7 — Star sequence containment (both output forms)
# ---------------------------------------------------------------------------


class TestExample7Containment:
    AGGREGATED = """
    SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
    AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
    AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
    """

    PER_TUPLE = """
    SELECT R1.tagid, R1.tagtime,
           R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
    AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
    AND R1.tagtime - R1.previous.tagtime < 1 SECONDS
    """

    def engine(self):
        engine = Engine()
        engine.create_stream("r1", "readerid str, tagid str, tagtime float")
        engine.create_stream("r2", "readerid str, tagid str, tagtime float")
        return engine

    def feed(self, engine, products, cases):
        for tag, ts in products:
            engine.push(
                "r1", {"readerid": "r1", "tagid": tag, "tagtime": ts}, ts=ts
            )
        for tag, ts in cases:
            engine.push(
                "r2", {"readerid": "r2", "tagid": tag, "tagtime": ts}, ts=ts
            )

    def test_aggregated_output(self):
        engine = self.engine()
        handle = engine.query(self.AGGREGATED)
        self.feed(
            engine,
            [("p1", 0.0), ("p2", 0.5), ("p3", 1.2)],
            [("case1", 3.0)],
        )
        row = handle.rows()[0]
        assert row["first_R1_tagtime"] == 0.0
        assert row["count_R1"] == 3
        assert row["tagid"] == "case1"

    def test_case_too_late_rejected(self):
        engine = self.engine()
        handle = engine.query(self.AGGREGATED)
        self.feed(engine, [("p1", 0.0)], [("case1", 50.0)])
        assert handle.rows() == []

    def test_per_tuple_output(self):
        engine = self.engine()
        handle = engine.query(self.PER_TUPLE)
        self.feed(engine, [("p1", 0.0), ("p2", 0.5)], [("case1", 2.0)])
        rows = handle.rows()
        assert [r["tagid"] for r in rows] == ["p1", "p2"]
        assert all(r["tagid_2"] == "case1" for r in rows)
        assert all(r["tagtime_2"] == 2.0 for r in rows)

    def test_overlapping_cases_figure_1b(self):
        """Products of case 2 arrive before case 1's tag is read."""
        engine = self.engine()
        handle = engine.query(self.AGGREGATED)
        self.feed(
            engine,
            [("p1", 0.0), ("p2", 0.5)],
            [],
        )
        # Case 2 products start (gap > 1s) before case 1's tag reading.
        engine.push("r1", {"readerid": "r1", "tagid": "q1", "tagtime": 2.0},
                    ts=2.0)
        engine.push("r2", {"readerid": "r2", "tagid": "case1",
                           "tagtime": 2.5}, ts=2.5)
        engine.push("r1", {"readerid": "r1", "tagid": "q2", "tagtime": 2.8},
                    ts=2.8)
        engine.push("r2", {"readerid": "r2", "tagid": "case2",
                           "tagtime": 4.0}, ts=4.0)
        rows = handle.rows()
        assert [(r["tagid"], r["count_R1"]) for r in rows] == [
            ("case1", 2), ("case2", 2),
        ]


# ---------------------------------------------------------------------------
# Example 5 / section 3.1.3 — EXCEPTION_SEQ and CLEVEL_SEQ
# ---------------------------------------------------------------------------


class TestExample5Workflow:
    EXCEPTION = """
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]
    """

    CLEVEL = """
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE (CLEVEL_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]) < 3
    """

    MID_ANCHOR = """
    SELECT A1.tagid FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A2]
    """

    def engine(self):
        engine = Engine()
        for name in ("a1", "a2", "a3"):
            engine.create_stream(name, "tagid str, tagtime float")
        return engine

    def feed(self, engine, trace):
        for stream, ts in trace:
            engine.push(stream, {"tagid": "staff", "tagtime": ts}, ts=ts)

    @pytest.mark.parametrize("query_attr", ["EXCEPTION", "CLEVEL"])
    def test_equivalence_of_both_forms(self, query_attr):
        """The paper states the CLEVEL form is equivalent to EXCEPTION_SEQ."""
        engine = self.engine()
        handle = engine.query(getattr(self, query_attr))
        self.feed(engine, [
            ("a1", 0.0), ("a2", 10.0), ("a3", 20.0),  # ok
            ("a1", 100.0), ("a3", 110.0),              # wrong order
            ("a2", 200.0),                              # wrong start
            ("a1", 300.0),                              # timeout below
        ])
        engine.advance_time(10000.0)
        assert len(handle.rows()) == 3

    def test_correct_sequence_silent(self):
        engine = self.engine()
        handle = engine.query(self.EXCEPTION)
        self.feed(engine, [("a1", 0.0), ("a2", 10.0), ("a3", 20.0)])
        engine.advance_time(10000.0)
        assert handle.rows() == []

    def test_timeout_exceeds_hour(self):
        engine = self.engine()
        handle = engine.query(self.EXCEPTION)
        self.feed(engine, [("a1", 0.0), ("a2", 10.0), ("a3", 3700.0)])
        # a3 arrives after the 1h deadline: expiration fires first.
        rows = handle.rows()
        assert len(rows) >= 1

    def test_following_window_on_second_stage(self):
        """The paper's FOLLOWING A2 variant: the clock starts at A2."""
        engine = self.engine()
        handle = engine.query(self.MID_ANCHOR)
        self.feed(engine, [("a1", 0.0)])
        engine.advance_time(100000.0)  # A1 alone never times out
        assert handle.rows() == []
        self.feed(engine, [("a2", 100000.0)])
        engine.advance_time(200000.0)
        assert len(handle.rows()) == 1


# ---------------------------------------------------------------------------
# Example 8 — Sliding Window Across Sub-query Boundary
# ---------------------------------------------------------------------------


class TestExample8Door:
    QUERY = """
    SELECT person.tagid
    FROM tag_readings AS person
    WHERE person.tagtype = 'person' AND NOT EXISTS
      (SELECT * FROM tag_readings AS item
       OVER [1 MINUTES
       PRECEDING AND FOLLOWING person]
       WHERE item.tagtype = 'item')
    """

    @pytest.fixture
    def setup(self):
        engine = Engine()
        engine.create_stream(
            "tag_readings", "tagid str, tagtype str, tagtime float"
        )
        handle = engine.query(self.QUERY)
        return engine, handle

    def push(self, engine, tagid, tagtype, ts):
        engine.push(
            "tag_readings",
            {"tagid": tagid, "tagtype": tagtype, "tagtime": ts},
            ts=ts,
        )

    def test_person_with_item_before_suppressed(self, setup):
        engine, handle = setup
        self.push(engine, "i1", "item", 60.0)
        self.push(engine, "p1", "person", 100.0)
        engine.advance_time(1000.0)
        assert handle.rows() == []

    def test_person_with_item_after_suppressed(self, setup):
        engine, handle = setup
        self.push(engine, "p1", "person", 100.0)
        self.push(engine, "i1", "item", 150.0)
        engine.advance_time(1000.0)
        assert handle.rows() == []

    def test_lonely_person_reported_after_window(self, setup):
        engine, handle = setup
        self.push(engine, "p1", "person", 100.0)
        assert handle.rows() == []  # decision pending
        engine.advance_time(161.0)
        assert [r["tagid"] for r in handle.rows()] == ["p1"]

    def test_item_far_away_does_not_suppress(self, setup):
        engine, handle = setup
        self.push(engine, "i1", "item", 0.0)
        self.push(engine, "p1", "person", 200.0)  # 200s later > 60s
        engine.advance_time(1000.0)
        assert len(handle.rows()) == 1
