"""Integration tests: DDL, filter queries, EXISTS probes, sinks, UDAs."""

import pytest

from repro.dsms import Engine
from repro.dsms.errors import EslSemanticError, EslSyntaxError


class TestDdl:
    def test_create_stream_via_sql(self, engine):
        engine.query("CREATE STREAM s(a int, b str)")
        assert engine.stream("s").schema.names == ("a", "b")

    def test_create_table_via_sql(self, engine):
        engine.query("CREATE TABLE t(x float)")
        assert engine.table("t").schema.names == ("x",)

    def test_bad_type_rejected(self, engine):
        with pytest.raises(EslSemanticError):
            engine.query("CREATE STREAM s(a widget)")

    def test_multi_statement_program(self, engine):
        engine.query("""
            CREATE STREAM src(a int);
            CREATE STREAM dst(a int);
            INSERT INTO dst SELECT a FROM src;
        """)
        got = engine.collect("dst")
        engine.push("src", {"a": 7}, ts=0.0)
        assert got.rows() == [{"a": 7}]

    def test_insert_values_into_table(self, engine):
        engine.query("CREATE TABLE t(a int, b str)")
        engine.query("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert len(engine.table("t")) == 2

    def test_insert_values_into_stream_rejected(self, engine):
        engine.create_stream("s", "a")
        with pytest.raises(EslSemanticError):
            engine.query("INSERT INTO s VALUES (1)")

    def test_create_aggregate_and_use(self, engine):
        engine.query("""
        CREATE AGGREGATE vrange(v) (
            INITIALIZE: lo := v, hi := v;
            ITERATE: lo := CASE WHEN v < lo THEN v ELSE lo END,
                     hi := CASE WHEN v > hi THEN v ELSE hi END;
            TERMINATE: RETURN hi - lo;
        )
        """)
        engine.create_stream("vals", "v float")
        handle = engine.query("SELECT vrange(v) FROM vals")
        for index, value in enumerate([5.0, 1.0, 9.0]):
            engine.push("vals", {"v": value}, ts=float(index))
        assert [row["vrange_v"] for row in handle.rows()] == [0.0, 4.0, 8.0]


class TestFilterQueries:
    @pytest.fixture
    def readings(self, engine):
        engine.create_stream("readings", "reader_id str, tid str, read_time float")
        return engine

    def feed(self, engine, rows):
        for index, (reader, tid) in enumerate(rows):
            engine.push(
                "readings",
                {"reader_id": reader, "tid": tid, "read_time": float(index)},
                ts=float(index),
            )

    def test_projection(self, readings):
        handle = readings.query("SELECT tid FROM readings")
        self.feed(readings, [("r1", "a")])
        assert handle.rows() == [{"tid": "a"}]

    def test_select_star(self, readings):
        handle = readings.query("SELECT * FROM readings")
        self.feed(readings, [("r1", "a")])
        assert handle.rows()[0]["reader_id"] == "r1"

    def test_where_filters(self, readings):
        handle = readings.query(
            "SELECT tid FROM readings WHERE reader_id = 'r2'"
        )
        self.feed(readings, [("r1", "a"), ("r2", "b")])
        assert [r["tid"] for r in handle.rows()] == ["b"]

    def test_like_and_udf(self, readings):
        handle = readings.query(
            "SELECT tid FROM readings WHERE tid LIKE '20.%' "
            "AND extract_serial(tid) > 100"
        )
        self.feed(readings, [("r", "20.1.50"), ("r", "20.1.200"), ("r", "9.1.999")])
        assert [r["tid"] for r in handle.rows()] == ["20.1.200"]

    def test_computed_select_item(self, readings):
        handle = readings.query(
            "SELECT upper(reader_id) AS rd, read_time * 2 AS dbl FROM readings"
        )
        self.feed(readings, [("r1", "a")])
        assert handle.rows() == [{"rd": "R1", "dbl": 0.0}]

    def test_output_timestamps_preserved(self, readings):
        handle = readings.query("SELECT tid FROM readings")
        self.feed(readings, [("r", "a"), ("r", "b")])
        assert [t.ts for t in handle.results] == [0.0, 1.0]

    def test_insert_into_autocreates_stream(self, readings):
        readings.query("INSERT INTO derived SELECT tid FROM readings")
        got = readings.collect("derived")
        self.feed(readings, [("r", "a")])
        assert got.rows() == [{"tid": "a"}]

    def test_insert_arity_mismatch_rejected(self, readings):
        readings.create_stream("narrow", "only_one")
        with pytest.raises(EslSemanticError):
            readings.query("INSERT INTO narrow SELECT tid, reader_id FROM readings")

    def test_window_on_main_stream_rejected(self, readings):
        with pytest.raises(EslSemanticError):
            readings.query(
                "SELECT tid FROM TABLE(readings OVER (RANGE 5 SECONDS "
                "PRECEDING CURRENT)) AS w"
            )


class TestStreamTableJoin:
    """The paper's Context Retrieval task: enrich readings from a table."""

    @pytest.fixture
    def ctx_engine(self, engine):
        engine.create_stream("readings", "tid str, read_time float")
        engine.create_table("products", "tid str, owner str")
        engine.query("INSERT INTO products VALUES ('a', 'alice'), ('b', 'bob')")
        return engine

    def test_enrichment_join(self, ctx_engine):
        handle = ctx_engine.query(
            "SELECT r.tid, p.owner FROM readings AS r, products AS p "
            "WHERE r.tid = p.tid"
        )
        ctx_engine.push("readings", {"tid": "b", "read_time": 0.0}, ts=0.0)
        assert handle.rows() == [{"tid": "b", "owner": "bob"}]

    def test_unmatched_reading_produces_nothing(self, ctx_engine):
        handle = ctx_engine.query(
            "SELECT r.tid, p.owner FROM readings AS r, products AS p "
            "WHERE r.tid = p.tid"
        )
        ctx_engine.push("readings", {"tid": "zz", "read_time": 0.0}, ts=0.0)
        assert handle.rows() == []

    def test_correlated_table_exists(self, ctx_engine):
        # Note: the correlated column must be qualified (r.tid) — a bare
        # `tid` inside the subquery resolves to products.tid (innermost
        # scope), per SQL name resolution.
        handle = ctx_engine.query(
            "SELECT tid FROM readings AS r WHERE NOT EXISTS "
            "(SELECT owner FROM products AS p WHERE p.tid = r.tid)"
        )
        ctx_engine.push("readings", {"tid": "a", "read_time": 0.0}, ts=0.0)
        ctx_engine.push("readings", {"tid": "zz", "read_time": 1.0}, ts=1.0)
        assert [r["tid"] for r in handle.rows()] == ["zz"]

    def test_inner_scope_shadows_outer(self, ctx_engine):
        # `p.tid = tid` binds the bare tid to products itself: tautology,
        # so EXISTS is true whenever the table is non-empty.
        handle = ctx_engine.query(
            "SELECT tid FROM readings WHERE EXISTS "
            "(SELECT owner FROM products AS p WHERE p.tid = tid)"
        )
        ctx_engine.push("readings", {"tid": "zz", "read_time": 0.0}, ts=0.0)
        assert len(handle.rows()) == 1


class TestWindowedExists:
    """Example 1's shape: NOT EXISTS over a preceding window."""

    @pytest.fixture
    def dedup(self, engine):
        engine.create_stream("readings", "reader_id str, tag_id str, read_time float")
        handle = engine.query("""
            SELECT * FROM readings AS r1
            WHERE NOT EXISTS
              (SELECT * FROM TABLE(readings OVER
                 (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
               WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)
        """)
        return engine, handle

    def push(self, engine, reader, tag, ts):
        engine.push(
            "readings",
            {"reader_id": reader, "tag_id": tag, "read_time": ts},
            ts=ts,
        )

    def test_duplicate_suppressed(self, dedup):
        engine, handle = dedup
        self.push(engine, "r1", "t1", 0.0)
        self.push(engine, "r1", "t1", 0.5)
        assert len(handle.rows()) == 1

    def test_far_apart_reads_kept(self, dedup):
        engine, handle = dedup
        self.push(engine, "r1", "t1", 0.0)
        self.push(engine, "r1", "t1", 2.0)
        assert len(handle.rows()) == 2

    def test_different_reader_not_duplicate(self, dedup):
        engine, handle = dedup
        self.push(engine, "r1", "t1", 0.0)
        self.push(engine, "r2", "t1", 0.1)
        assert len(handle.rows()) == 2

    def test_boundary_exactly_one_second(self, dedup):
        engine, handle = dedup
        self.push(engine, "r1", "t1", 0.0)
        self.push(engine, "r1", "t1", 1.0)  # within [t-1, t] inclusive
        assert len(handle.rows()) == 1

    def test_rows_window_exists(self, engine):
        engine.create_stream("s", "tag str")
        handle = engine.query("""
            SELECT tag FROM s AS cur WHERE NOT EXISTS
              (SELECT * FROM TABLE(s OVER (ROWS 1 PRECEDING)) AS prev
               WHERE prev.tag = cur.tag)
        """)
        for index, tag in enumerate(["a", "a", "b", "a"]):
            engine.push("s", {"tag": tag}, ts=float(index))
        assert [r["tag"] for r in handle.rows()] == ["a", "b", "a"]

    def test_unwindowed_stream_exists_rejected(self, engine):
        engine.create_stream("s", "tag str")
        with pytest.raises(EslSemanticError):
            engine.query(
                "SELECT tag FROM s WHERE EXISTS (SELECT * FROM s AS x)"
            )


class TestErrorPaths:
    def test_syntax_error_propagates(self, engine):
        with pytest.raises(EslSyntaxError):
            engine.query("SELEKT oops")

    def test_group_by_with_temporal_rejected(self, engine):
        engine.create_stream("a", "tagid str")
        engine.create_stream("b", "tagid str")
        with pytest.raises(EslSemanticError):
            engine.query(
                "SELECT count(tagid) FROM a, b WHERE SEQ(A, B) GROUP BY tagid"
            )

    def test_exists_with_temporal_rejected(self, engine):
        engine.create_stream("a", "tagid str")
        engine.create_stream("b", "tagid str")
        engine.create_table("t", "tagid str")
        with pytest.raises(EslSemanticError):
            engine.query(
                "SELECT tagid FROM a, b WHERE SEQ(A, B) AND EXISTS "
                "(SELECT tagid FROM t)"
            )

    def test_temporal_arg_must_be_stream(self, engine):
        engine.create_stream("a", "tagid str")
        engine.create_table("t", "tagid str")
        with pytest.raises(EslSemanticError):
            engine.query("SELECT tagid FROM a, t WHERE SEQ(A, T)")


class TestDeleteUpdate:
    """DELETE FROM / UPDATE ... SET over persistent tables."""

    @pytest.fixture
    def stocked(self, engine):
        engine.query("CREATE TABLE inventory(tagid str, location str, qty int)")
        engine.query("""
            INSERT INTO inventory VALUES
                ('t1', 'dock', 5), ('t2', 'dock', 3), ('t3', 'aisle', 9)
        """)
        return engine

    def test_delete_with_where(self, stocked):
        handle = stocked.query("DELETE FROM inventory WHERE location = 'dock'")
        assert handle.affected_rows == 2
        assert len(stocked.table("inventory")) == 1

    def test_delete_all(self, stocked):
        handle = stocked.query("DELETE FROM inventory")
        assert handle.affected_rows == 3
        assert len(stocked.table("inventory")) == 0

    def test_delete_qualified_column(self, stocked):
        stocked.query("DELETE FROM inventory WHERE inventory.qty > 4")
        remaining = {r["tagid"] for r in stocked.table("inventory").scan()}
        assert remaining == {"t2"}

    def test_update_with_where(self, stocked):
        handle = stocked.query(
            "UPDATE inventory SET location = 'shipped' WHERE qty < 6"
        )
        assert handle.affected_rows == 2
        shipped = list(stocked.table("inventory").lookup(location="shipped"))
        assert len(shipped) == 2

    def test_update_expression_reads_row(self, stocked):
        stocked.query("UPDATE inventory SET qty = qty + 10")
        quantities = sorted(r["qty"] for r in stocked.table("inventory").scan())
        assert quantities == [13, 15, 19]

    def test_update_multiple_columns(self, stocked):
        stocked.query(
            "UPDATE inventory SET qty = 0, location = 'void' "
            "WHERE tagid = 't1'"
        )
        row = next(stocked.table("inventory").lookup(tagid="t1"))
        assert row["qty"] == 0 and row["location"] == "void"

    def test_delete_unknown_table(self, engine):
        from repro.dsms.errors import UnknownTableError

        with pytest.raises(UnknownTableError):
            engine.query("DELETE FROM nope")
