"""Differential tests for columnar vectorized admission.

Every test here runs the same input three ways — per-record ``push``,
``push_columns`` with ``vectorized_admission`` off, and ``push_columns``
with it on — and asserts byte-identical output: same values, same
timestamps, same order, same timer interleaving.  The vectorized tier is
allowed to *skip materializing* rows it proves inadmissible, never to
change a result.
"""

import pytest

from repro.dsms.columns import (
    ColumnBatch,
    TAG_BOOL,
    TAG_F64,
    TAG_I64,
    TAG_PICKLE,
    TAG_STR,
    column_tag,
    pack_column,
    schema_hints,
    unpack_column,
)
from repro.dsms.engine import Engine
from repro.dsms.errors import OutOfOrderError, SchemaError
from repro.dsms.schema import Schema

pytestmark = pytest.mark.columnar

MODES = ("rows", "scalar-columns", "vectorized-columns")


def run_differential(setup, batches, post=None):
    """Feed *batches* (``[(stream, [(values, ts), ...]), ...]``) through
    all three ingestion modes; assert exact output equality and return
    the common output per handle."""
    per_mode = []
    for mode in MODES:
        engine = Engine(vectorized_admission=(mode == "vectorized-columns"))
        handles = setup(engine)
        for stream, rows in batches:
            if mode == "rows":
                for values, ts in rows:
                    engine.push(stream, values, ts)
            else:
                schema = engine.streams.get(stream).schema
                engine.push_columns(
                    stream, ColumnBatch.from_rows(schema, rows)
                )
        if post is not None:
            post(engine)
        per_mode.append(
            [
                [(t.values, t.ts, t.stream) for t in handle.results]
                for handle in handles
            ]
        )
    assert per_mode[0] == per_mode[1] == per_mode[2]
    return per_mode[0]


def spaced(rows, start=0.0, step=1.0):
    return [(values, start + index * step) for index, values in enumerate(rows)]


class TestFilterDifferential:
    SCHEMA = "tag_id int, pressure float, loc str"

    def _readings(self, n=700, seed=5):
        import random

        rng = random.Random(seed)
        locations = ("dock", "yard", "belt")
        return [
            {
                "tag_id": i,
                "pressure": rng.random(),
                "loc": locations[i % 3],
            }
            for i in range(n)
        ]

    def _batches(self, rows, batch=128):
        records = spaced(rows)
        return [
            ("readings", records[start:start + batch])
            for start in range(0, len(records), batch)
        ]

    @pytest.mark.parametrize("threshold", [0.01, 0.1, 0.5])
    def test_selectivity_sweep(self, threshold):
        def setup(engine):
            engine.create_stream("readings", self.SCHEMA)
            return [
                engine.query(
                    "SELECT tag_id, pressure FROM readings AS R "
                    f"WHERE R.pressure < {threshold!r} AND R.loc = 'dock'"
                )
            ]

        (out,) = run_differential(setup, self._batches(self._readings()))
        assert all(values[1] < threshold for values, _ts, _s in out)

    @pytest.mark.parametrize("threshold, expect", [(-1.0, 0), (2.0, 700)])
    def test_zero_and_full_pass_rates(self, threshold, expect):
        def setup(engine):
            engine.create_stream("readings", self.SCHEMA)
            return [
                engine.query(
                    "SELECT tag_id FROM readings AS R "
                    f"WHERE R.pressure < {threshold!r}"
                )
            ]

        (out,) = run_differential(setup, self._batches(self._readings()))
        assert len(out) == expect

    def test_empty_and_single_row_batches(self):
        def setup(engine):
            engine.create_stream("readings", self.SCHEMA)
            return [
                engine.query(
                    "SELECT tag_id FROM readings AS R WHERE R.pressure < 0.5"
                )
            ]

        rows = self._readings(n=3)
        batches = [
            ("readings", []),
            ("readings", [(rows[0], 0.0)]),
            ("readings", []),
            ("readings", spaced(rows[1:], start=1.0)),
        ]
        run_differential(setup, batches)

    def test_epc_like_filter(self):
        """The paper's EPC-prefix idiom: LIKE over a string column."""

        def setup(engine):
            engine.create_stream("readings", "tid str, tagtime float")
            return [
                engine.query(
                    "SELECT tid FROM readings AS R WHERE tid LIKE '20.%.ca'"
                )
            ]

        rows = [
            {"tid": f"20.{serial}.{'ca' if serial % 3 else 'fb'}",
             "tagtime": float(serial)}
            for serial in range(300)
        ]
        (out,) = run_differential(setup, self._batches(rows, batch=64))
        assert out and all(values[0].endswith(".ca") for values, _t, _s in out)

    def test_null_values_reject_strictly(self):
        """NULL comparison results are Kleene-NULL: the strict WHERE
        rejects them, in both the scalar and the vectorized tier."""

        def setup(engine):
            engine.create_stream("readings", self.SCHEMA)
            return [
                engine.query(
                    "SELECT tag_id FROM readings AS R WHERE R.pressure < 0.5"
                )
            ]

        rows = [
            {"tag_id": i, "pressure": None if i % 4 == 0 else i / 20.0,
             "loc": "dock"}
            for i in range(20)
        ]
        (out,) = run_differential(setup, [("readings", spaced(rows))])
        assert len(out) == 7  # 10 below threshold minus the NULLed ones

    def test_fanout_union_mask(self):
        """Two filters on one stream: the stream materializes the union
        of the admission masks, and both queries still match scalar."""

        def setup(engine):
            engine.create_stream("readings", self.SCHEMA)
            return [
                engine.query(
                    "SELECT tag_id FROM readings AS R WHERE R.pressure < 0.1"
                ),
                engine.query(
                    "SELECT tag_id FROM readings AS R WHERE R.pressure > 0.9"
                ),
            ]

        low, high = run_differential(setup, self._batches(self._readings()))
        assert low and high

    def test_udf_predicate_falls_back(self):
        """A UDF in the WHERE clause cannot vector-compile; the hook
        declines and the batch materializes fully — same outputs."""

        def setup(engine):
            engine.register_udf("halve", lambda v: v / 2.0)
            engine.create_stream("readings", self.SCHEMA)
            return [
                engine.query(
                    "SELECT tag_id FROM readings AS R "
                    "WHERE halve(R.pressure) < 0.25"
                )
            ]

        run_differential(setup, self._batches(self._readings(n=200)))

    def test_hook_attachment(self):
        """The filter subscription carries the vector hook exactly when
        the engine opts in and the predicate vector-compiles."""
        for flag, vectorizable, expect in (
            (True, True, True),
            (False, True, False),
            (True, False, False),
        ):
            engine = Engine(vectorized_admission=flag)
            engine.register_udf("halve", lambda v: v / 2.0)
            engine.create_stream("readings", self.SCHEMA)
            predicate = (
                "R.pressure < 0.5" if vectorizable else "halve(R.pressure) < 0.25"
            )
            engine.query(
                f"SELECT tag_id FROM readings AS R WHERE {predicate}"
            )
            stream = engine.streams.get("readings")
            hooked = [
                callback
                for callback in stream._fanout
                if getattr(callback, "vector_admission", None) is not None
            ]
            assert bool(hooked) is expect

    def test_out_of_order_batch_raises(self):
        engine = Engine()
        engine.create_stream("readings", self.SCHEMA)
        engine.query("SELECT tag_id FROM readings AS R WHERE R.pressure < 0.5")
        schema = engine.streams.get("readings").schema
        batch = ColumnBatch.from_rows(
            schema,
            [
                ({"tag_id": 1, "pressure": 0.1, "loc": "dock"}, 5.0),
                ({"tag_id": 2, "pressure": 0.1, "loc": "dock"}, 1.0),
            ],
        )
        with pytest.raises((OutOfOrderError, Exception)):
            engine.push_columns("readings", batch)

    def test_run_trace_mixed_entries(self):
        """run_trace accepts (stream, batch) pairs interleaved with
        (stream, values, ts) records."""
        engine = Engine()
        engine.create_stream("readings", self.SCHEMA)
        handle = engine.query(
            "SELECT tag_id FROM readings AS R WHERE R.pressure < 0.5"
        )
        schema = engine.streams.get("readings").schema
        batch = ColumnBatch.from_rows(
            schema, [({"tag_id": 1, "pressure": 0.2, "loc": "d"}, 1.0)]
        )
        count = engine.run_trace(
            [
                ("readings", {"tag_id": 0, "pressure": 0.3, "loc": "d"}, 0.0),
                ("readings", batch),
                ("readings", {"tag_id": 2, "pressure": 0.9, "loc": "d"}, 2.0),
            ]
        )
        assert count == 3
        assert [t.values[0] for t in handle.results] == [0, 1]


class TestTemporalDifferential:
    def _seq_setup(self, engine):
        engine.create_stream("a", "tag_id str, v float")
        engine.create_stream("b", "tag_id str, w float")
        return [
            engine.query(
                "SELECT X.tag_id, X.v, Y.w FROM a AS X, b AS Y "
                "WHERE SEQ(X, Y) AND X.tag_id = Y.tag_id "
                "AND X.v < 0.3 AND Y.w > 0.6"
            )
        ]

    def _seq_batches(self, n=900, seed=13):
        import random

        rng = random.Random(seed)
        batches = []
        ts = 0.0
        for start in range(0, n, 100):
            a_rows = [
                {"tag_id": f"t{rng.randrange(40)}", "v": rng.random()}
                for _ in range(100)
            ]
            b_rows = [
                {"tag_id": f"t{rng.randrange(40)}", "w": rng.random()}
                for _ in range(100)
            ]
            batches.append(("a", spaced(a_rows, start=ts)))
            batches.append(("b", spaced(b_rows, start=ts + 120.0)))
            ts += 400.0
        return batches

    def test_seq_admission_guard(self):
        """Single-alias SEQ conjuncts become admission masks; pairing
        output must match the scalar engine exactly."""
        (out,) = run_differential(self._seq_setup, self._seq_batches())
        assert out
        assert all(values[1] < 0.3 and values[2] > 0.6 for values, _t, _s in out)

    def test_exception_seq_timer_interleaving(self):
        """Active-expiration timers fire between batch rows: dropped rows
        still advance the clock, so exception reports keep their exact
        deadline stamps and interleaving."""

        def setup(engine):
            for name in ("a1", "a2", "a3"):
                engine.create_stream(name, "tagid str, tagtime float")
            filtered = engine.query(
                "SELECT tagid FROM a1 AS R WHERE R.tagtime < 50.0"
            )
            exceptions = engine.query(
                "SELECT A1.tagid FROM a1, a2, a3 "
                "WHERE EXCEPTION_SEQ(A1, A2, A3) "
                "OVER [1 HOURS FOLLOWING A1]"
            )
            return [filtered, exceptions]

        batches = []
        # Sparse anchors whose 1-hour deadlines land mid-way through the
        # later dense batches.
        batches.append(
            ("a1", [({"tagid": f"s{i}", "tagtime": i * 10.0}, i * 10.0)
                    for i in range(6)])
        )
        batches.append(
            ("a2", [({"tagid": "s0", "tagtime": 100.0}, 100.0)])
        )
        # A dense batch straddling several anchors' 3600s deadlines.
        batches.append(
            ("a1", [({"tagid": f"late{i}", "tagtime": 3500.0 + i * 20.0},
                     3500.0 + i * 20.0) for i in range(10)])
        )
        filtered, exceptions = run_differential(
            setup, batches, post=lambda engine: engine.advance_time(99999.0)
        )
        assert exceptions  # timeouts actually fired


@pytest.mark.transport
class TestShardedColumnar:
    def test_pipe_columnar_matches_row_path(self):
        """ColumnBatch routing over the framed pipe transport produces
        the same merged rows as per-record routing and a single engine."""
        import random

        from repro.dsms.sharding import ShardedEngine

        rng = random.Random(3)
        rows_a = [
            {"tag_id": f"t{rng.randrange(30)}", "v": rng.random()}
            for _ in range(600)
        ]
        rows_b = [
            {"tag_id": f"t{rng.randrange(30)}", "w": rng.random()}
            for _ in range(600)
        ]
        batches = []
        ts = 0.0
        for start in range(0, 600, 120):
            batches.append(("a", spaced(rows_a[start:start + 120], start=ts)))
            batches.append(
                ("b", spaced(rows_b[start:start + 120], start=ts + 150.0))
            )
            ts += 400.0
        query = (
            "SELECT X.tag_id, X.v, Y.w FROM a AS X, b AS Y "
            "WHERE SEQ(X, Y) AND X.tag_id = Y.tag_id "
            "AND X.v < 0.3 AND Y.w > 0.6"
        )

        def run(columnar, **kwargs):
            sharded = ShardedEngine(n_shards=2, **kwargs)
            sharded.create_stream("a", "tag_id str, v float")
            sharded.create_stream("b", "tag_id str, w float")
            handle = sharded.query(query)
            sharded.start()
            for stream, rows in batches:
                if columnar:
                    schema = sharded.catalog.streams.get(stream).schema
                    sharded.push_columns(
                        stream, ColumnBatch.from_rows(schema, rows)
                    )
                else:
                    for values, ts_ in rows:
                        sharded.push(stream, values, ts_)
            sharded.flush()
            out = [(t.values, t.ts) for t in handle.results]
            sharded.close()
            return out

        reference = run(False, executor="serial")
        assert run(True, executor="parallel") == reference
        assert (
            run(True, executor="parallel", vectorized_admission=False)
            == reference
        )
        # The serial executor now routes batches columnar too, mirroring
        # the pipe worker's COLBATCH epoch semantics.
        assert run(True, executor="serial") == reference

    def test_serial_columnar_takes_batch_path(self):
        """Serial ``push_columns`` goes through the executor's columnar
        route — never the per-row ``push`` fallback — and matches the
        per-row reference exactly, including clock-heartbeat timing for
        untouched shards."""
        from repro.dsms.sharding import ShardedEngine, _SerialExecutor

        assert hasattr(_SerialExecutor, "route_columns")

        def build():
            sharded = ShardedEngine(n_shards=3, executor="serial")
            sharded.create_stream("readings", "tag_id int, pressure float")
            handle = sharded.query(
                "SELECT tag_id, pressure FROM readings AS R "
                "WHERE R.pressure < 0.4"
            )
            sharded.start()
            return sharded, handle

        rows = [
            ({"tag_id": i, "pressure": (i * 37 % 100) / 100.0}, float(i))
            for i in range(300)
        ]

        ref_engine, ref_handle = build()
        for values, ts in rows:
            ref_engine.push("readings", values, ts)
        ref_engine.flush()
        reference = [(t.values, t.ts) for t in ref_handle.results]
        ref_engine.close()

        col_engine, col_handle = build()
        col_engine.push = None  # any per-row fallback would blow up here
        schema = col_engine.catalog.streams.get("readings").schema
        for start in range(0, len(rows), 64):
            col_engine.push_columns(
                "readings",
                ColumnBatch.from_rows(schema, rows[start:start + 64]),
            )
        col_engine.flush()
        assert [(t.values, t.ts) for t in col_handle.results] == reference
        col_engine.close()


class TestColumnBatch:
    SCHEMA = Schema.parse("tag_id int, pressure float, loc str")

    def test_from_rows_and_accessors(self):
        batch = ColumnBatch.from_rows(
            self.SCHEMA,
            [
                ({"tag_id": 1, "pressure": 0.5, "loc": "dock"}, 0.0),
                ((2, 0.75, "yard"), 1),
            ],
        )
        assert len(batch) == 2
        assert list(batch.columns[0]) == [1, 2]
        assert batch.timestamps == [0.0, 1.0]  # coerced to float once
        assert batch.row(1) == (2, 0.75, "yard")
        assert list(batch.rows()) == batch.to_records()

    def test_from_rows_rejects_unknown_fields_and_bad_width(self):
        with pytest.raises(SchemaError):
            ColumnBatch.from_rows(
                self.SCHEMA, [({"tag_id": 1, "bogus": 2}, 0.0)]
            )
        with pytest.raises(SchemaError):
            ColumnBatch.from_rows(self.SCHEMA, [((1, 2.0), 0.0)])

    def test_select_gathers_rows(self):
        batch = ColumnBatch.from_rows(
            self.SCHEMA,
            spaced(
                [{"tag_id": i, "pressure": i / 10.0, "loc": "d"}
                 for i in range(5)]
            ),
        )
        sub = batch.select([0, 3, 4])
        assert len(sub) == 3
        assert list(sub.columns[0]) == [0, 3, 4]
        assert sub.timestamps == [0.0, 3.0, 4.0]
        assert sub.schema is batch.schema

    def test_push_columns_schema_mismatch(self):
        engine = Engine()
        engine.create_stream("readings", "tag_id int, pressure float, loc str")
        other = Schema.parse("x int, y float")
        batch = ColumnBatch.from_rows(other, [((1, 2.0), 0.0)])
        with pytest.raises(SchemaError):
            engine.push_columns("readings", batch)


class TestSharedPacking:
    """The transport codec and ColumnBatch share one packing definition."""

    def test_schema_hints(self):
        schema = Schema.parse("a int, b float, c str, d bool, e any")
        assert schema_hints(schema) == (
            TAG_I64, TAG_F64, TAG_STR, TAG_BOOL, None
        )

    @pytest.mark.parametrize(
        "values, expected_tag",
        [
            ((1, 2, 3), TAG_I64),
            ((1.5, None, 2.0), TAG_F64),
            (("a", "b", None), TAG_STR),
            ((True, False), TAG_BOOL),
            ((1, "mixed"), TAG_PICKLE),
            (((1, 2), None), TAG_PICKLE),
        ],
    )
    def test_pack_unpack_round_trip(self, values, expected_tag):
        assert column_tag(values, None) == expected_tag
        parts = []
        pack_column(values, None, parts)
        payload = b"".join(
            part if isinstance(part, bytes) else bytes(part)
            for part in parts
        )
        unpacked, offset = unpack_column(memoryview(payload), 0, len(values))
        assert tuple(unpacked) == tuple(values)
        assert offset == len(payload)

    def test_transport_reexports_shared_codec(self):
        from repro.dsms import columns, transport

        assert transport.dumps_oob is columns.dumps_oob
        assert transport.loads_oob is columns.loads_oob
