"""Batched ingestion (``push_batch`` / ``run_trace``) vs. per-tuple ``push``.

The batched paths exist for throughput, but their contract is strict
semantic equivalence with :meth:`Engine.push`: same delivered tuples,
same schema errors, same order enforcement, and — critically for
EXCEPTION_SEQ's Active Expiration — the same timer-before-later-tuple
interleaving.  Also covers the per-engine sequence numbering that the
batched tuple construction must preserve.
"""

from __future__ import annotations

import pytest

from repro.core.operators import (
    ExceptionReason,
    ExceptionSeqOperator,
    OperatorWindow,
    SeqArg,
)
from repro.dsms import Engine
from repro.dsms.errors import ClockError, OutOfOrderError, SchemaError
from repro.rfid import (
    build_dedup,
    build_quality_check,
    dedup_workload,
    quality_check_workload,
)


def collected(engine, name):
    collector = engine.collect(name)
    return collector


class TestPushBatch:
    def make_engine(self):
        engine = Engine()
        engine.create_stream("readings", "tag_id str, read_time float")
        return engine

    def test_matches_per_tuple_push(self):
        records = [({"tag_id": f"t{i % 3}", "read_time": float(i)}, float(i))
                   for i in range(20)]
        one = self.make_engine()
        out_one = collected(one, "readings")
        for values, ts in records:
            one.push("readings", values, ts)

        two = self.make_engine()
        out_two = collected(two, "readings")
        assert two.push_batch("readings", records) == 20

        assert [t.as_dict() for t in out_one.results] == [
            t.as_dict() for t in out_two.results
        ]
        assert [t.ts for t in out_one.results] == [t.ts for t in out_two.results]
        assert two.now == one.now

    def test_accepts_positional_rows(self):
        engine = self.make_engine()
        out = collected(engine, "readings")
        engine.push_batch("readings", [(["t1", 1.0], 1.0), (("t2", 2.0), 2.0)])
        assert [t.as_dict() for t in out.results] == [
            {"tag_id": "t1", "read_time": 1.0},
            {"tag_id": "t2", "read_time": 2.0},
        ]

    def test_unknown_field_raises_schema_error(self):
        engine = self.make_engine()
        with pytest.raises(SchemaError, match="unknown fields"):
            engine.push_batch("readings", [({"nope": 1}, 1.0)])

    def test_wrong_arity_raises_schema_error(self):
        engine = self.make_engine()
        with pytest.raises(SchemaError, match="values"):
            engine.push_batch("readings", [(["only-one"], 1.0)])

    def test_backwards_timestamps_rejected_like_push(self):
        # Engine.push surfaces a backwards timestamp as ClockError (the
        # clock is advanced before the stream sees the tuple); the batched
        # path must fail identically, not deliver out of order.
        records = [({"tag_id": "a", "read_time": 5.0}, 5.0),
                   ({"tag_id": "b", "read_time": 1.0}, 1.0)]
        one = self.make_engine()
        with pytest.raises(ClockError):
            for values, ts in records:
                one.push("readings", values, ts)
        two = self.make_engine()
        with pytest.raises(ClockError):
            two.push_batch("readings", records)

    def test_stream_level_order_enforced_by_ingester(self):
        engine = self.make_engine()
        stream = engine.streams.get("readings")
        stream.ingest({"tag_id": "a", "read_time": 5.0}, 5.0)
        with pytest.raises(OutOfOrderError):
            stream.ingest({"tag_id": "b", "read_time": 1.0}, 1.0)

    def test_reorder_stream_buffers_and_flushes(self):
        engine = Engine()
        engine.create_stream(
            "jittery", "tag_id str", allow_out_of_order=True, reorder_slack=10.0
        )
        out = collected(engine, "jittery")
        stream = engine.streams.get("jittery")
        for values, ts in [(["a"], 5.0), (["b"], 2.0), (["c"], 7.0)]:
            stream.ingest(values, ts)
        engine.flush()
        assert [t.ts for t in out.results] == [2.0, 5.0, 7.0]


class TestRunTraceEquivalence:
    def test_quality_scenario_rows_identical(self):
        workload = quality_check_workload(n_products=40, seed=9)
        batched = build_quality_check(workload)
        batched.engine.run_trace(workload.trace)
        batched.engine.flush()

        single = build_quality_check(workload)
        for stream_name, values, ts in workload.trace:
            single.engine.push(stream_name, values, ts)
        single.engine.flush()

        assert batched.rows() == single.rows()

    def test_dedup_scenario_rows_identical(self):
        workload = dedup_workload(n_tags=10, presences_per_tag=3, dwell=1.0,
                                  seed=4)
        batched = build_dedup(workload)
        batched.engine.run_trace(workload.trace)
        batched.engine.flush()

        single = build_dedup(workload)
        for stream_name, values, ts in workload.trace:
            single.engine.push(stream_name, values, ts)
        single.engine.flush()

        assert batched.rows() == single.rows()

    def test_interpreted_engine_also_supports_run_trace(self):
        workload = quality_check_workload(n_products=15, seed=9)
        slow = build_quality_check(workload, compile_expressions=False)
        slow.engine.run_trace(workload.trace)
        slow.engine.flush()
        fast = build_quality_check(workload)
        fast.engine.run_trace(workload.trace)
        fast.engine.flush()
        assert slow.rows() == fast.rows()


class TestActiveExpirationUnderBatching:
    """Timers due at a record's timestamp fire before the record lands."""

    def build(self, engine):
        for name in ("a", "b", "c"):
            engine.create_stream(name, "tagid str, tagtime float")
        return ExceptionSeqOperator(
            engine,
            [SeqArg("a"), SeqArg("b"), SeqArg("c")],
            window=OperatorWindow(3600.0, 0, "following"),
        )

    TRACE = [
        ("a", {"tagid": "x", "tagtime": 0.0}, 0.0),
        ("b", {"tagid": "x", "tagtime": 10.0}, 10.0),
        # Far past the 3600s deadline: the expiration must be detected
        # before this tuple is interpreted (it then reads as a wrong start).
        ("c", {"tagid": "x", "tagtime": 4000.0}, 4000.0),
    ]

    def expected_reasons(self):
        engine = Engine()
        op = self.build(engine)
        for stream, values, ts in self.TRACE:
            engine.push(stream, values, ts)
        return [o.reason for o in op.outcomes]

    def test_run_trace_preserves_timer_ordering(self):
        expected = self.expected_reasons()
        assert expected == [
            ExceptionReason.WINDOW_EXPIRED, ExceptionReason.WRONG_START,
        ]
        engine = Engine()
        op = self.build(engine)
        engine.run_trace(self.TRACE)
        assert [o.reason for o in op.outcomes] == expected

    def test_push_batch_preserves_timer_ordering(self):
        engine = Engine()
        op = self.build(engine)
        engine.push_batch("a", [({"tagid": "x", "tagtime": 0.0}, 0.0)])
        engine.push_batch("b", [({"tagid": "x", "tagtime": 10.0}, 10.0)])
        # The 3600s deadline falls before this batch's record: the timer
        # must fire mid-call, before the 4000s tuple is delivered — the
        # same WINDOW_EXPIRED-then-WRONG_START order the per-push feed gives.
        engine.push_batch("c", [({"tagid": "x", "tagtime": 4000.0}, 4000.0)])
        assert [o.reason for o in op.outcomes] == [
            ExceptionReason.WINDOW_EXPIRED, ExceptionReason.WRONG_START,
        ]
        assert engine.now == 4000.0


class TestPerEngineSequencing:
    def test_counters_do_not_leak_between_engines(self):
        first = Engine()
        second = Engine()
        for engine in (first, second):
            engine.create_stream("s", "v int")
        outs = [collected(first, "s"), collected(second, "s")]
        for i in range(5):
            first.push("s", [i], float(i))
            second.push("s", [i], float(i))
        for out in outs:
            seqs = [t.seq for t in out.results]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == 5
        # Interleaved pushes to another engine must not inflate this
        # engine's numbering: both see the same counts.
        assert [t.seq for t in outs[0].results] == [t.seq for t in outs[1].results]

    def test_ts_ties_break_by_arrival_across_streams(self):
        engine = Engine()
        engine.create_stream("x", "v int")
        engine.create_stream("y", "v int")
        seen = []
        engine.streams.get("x").subscribe(seen.append)
        engine.streams.get("y").subscribe(seen.append)
        engine.push("x", [1], 5.0)
        engine.push("y", [2], 5.0)
        engine.push("x", [3], 5.0)
        assert sorted(seen) == seen  # (ts, seq) order == arrival order
        assert seen[0] < seen[1] < seen[2]
        assert seen[2] <= seen[2]

    def test_batch_ingester_stamps_from_engine_counter(self):
        engine = Engine()
        engine.create_stream("s", "v int")
        out = collected(engine, "s")
        engine.push("s", [0], 0.0)
        engine.push_batch("s", [([1], 1.0), ([2], 2.0)])
        engine.push("s", [3], 3.0)
        seqs = [t.seq for t in out.results]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 4


class TestHistoryCaseInsensitivity:
    def test_mixed_case_enable_and_lookup(self):
        engine = Engine()
        engine.create_stream("Readings", "tag_id str, read_time float")
        view = engine.enable_history("READINGS")
        # Any casing resolves to the same view; enabling twice is a no-op.
        assert engine.history("readings") is view
        assert engine.history("Readings") is view
        assert engine.enable_history("readings") is view
        engine.push("rEaDiNgS", {"tag_id": "t", "read_time": 1.0}, 1.0)
        rows = engine.snapshot("SELECT tag_id FROM readings")
        assert rows == [{"tag_id": "t"}]
