"""Property-based tests (hypothesis) for core invariants.

Each property encodes a semantic guarantee the paper's constructs rely on:
mode equivalences, purging soundness, longest-match, SQL/EPC agreement,
window retention, and clock monotonicity.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.baselines import JoinSequenceBaseline
from repro.core.operators import (
    PairingMode,
    SeqArg,
    make_sequence_operator,
)
from repro.dsms import Engine, Schema, Tuple, VirtualClock
from repro.dsms.windows import RangeWindowBuffer
from repro.epc import EpcCode, EpcPattern, pattern_to_sql

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

#: A trace over k streams: list of (stream_index, gap) pairs.
def trace_strategy(n_streams: int, max_len: int = 40):
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=n_streams - 1),
            st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
        ),
        min_size=0,
        max_size=max_len,
    )


def build_engine(n_streams: int) -> Engine:
    engine = Engine()
    for index in range(n_streams):
        engine.create_stream(f"s{index}", "tagid str, tagtime float")
    return engine


def run_trace(engine: Engine, raw: list[tuple[int, float]]) -> list[tuple[str, float]]:
    t = 0.0
    fed = []
    for stream_index, gap in raw:
        t += gap
        name = f"s{stream_index}"
        engine.push(name, {"tagid": "x", "tagtime": t}, ts=t)
        fed.append((name, t))
    return fed


# ---------------------------------------------------------------------------
# SEQ mode properties
# ---------------------------------------------------------------------------


class TestSeqProperties:
    @given(trace_strategy(3))
    @settings(max_examples=60, deadline=None)
    def test_unrestricted_equals_join_baseline(self, raw):
        """Footnote 3: UNRESTRICTED SEQ == the n-way join formulation."""
        streams = ["s0", "s1", "s2"]
        engine = build_engine(3)
        op = make_sequence_operator(
            engine, [SeqArg(s) for s in streams],
            mode=PairingMode.UNRESTRICTED,
        )
        join = JoinSequenceBaseline(engine, streams)
        run_trace(engine, raw)
        op_keys = sorted(m.key() for m in op.matches)
        join_keys = sorted(
            tuple(((b[s].ts, b[s].seq),) for s in streams)
            for b in join.matches
        )
        assert op_keys == join_keys

    @given(trace_strategy(3))
    @settings(max_examples=60, deadline=None)
    def test_recent_and_chronicle_subset_of_unrestricted(self, raw):
        """Every RECENT/CHRONICLE event is also an UNRESTRICTED event."""
        results = {}
        for mode in (PairingMode.UNRESTRICTED, PairingMode.RECENT,
                     PairingMode.CHRONICLE):
            engine = build_engine(3)
            op = make_sequence_operator(
                engine, [SeqArg(f"s{i}") for i in range(3)], mode=mode
            )
            run_trace(engine, raw)
            # Compare by timestamp chains: timestamps are strictly
            # increasing (gaps >= 0.1), so they identify tuples across the
            # three independent engine runs.
            results[mode] = {
                tuple(t.ts for t in m.all_tuples()) for m in op.matches
            }
        assert results[PairingMode.RECENT] <= results[PairingMode.UNRESTRICTED]
        assert results[PairingMode.CHRONICLE] <= results[
            PairingMode.UNRESTRICTED
        ]

    @given(trace_strategy(3))
    @settings(max_examples=60, deadline=None)
    def test_recent_at_most_one_match_per_anchor(self, raw):
        engine = build_engine(3)
        op = make_sequence_operator(
            engine, [SeqArg(f"s{i}") for i in range(3)],
            mode=PairingMode.RECENT,
        )
        fed = run_trace(engine, raw)
        anchors = sum(1 for name, __ in fed if name == "s2")
        assert op.matches_emitted <= anchors

    @given(trace_strategy(3))
    @settings(max_examples=60, deadline=None)
    def test_recent_purge_is_sound(self, raw):
        """Aggressive purging never changes RECENT results.

        Reference: recompute the backward-greedy chain per anchor from the
        *complete* trace prefix, with no purging at all.
        """
        engine = build_engine(3)
        op = make_sequence_operator(
            engine, [SeqArg(f"s{i}") for i in range(3)],
            mode=PairingMode.RECENT,
        )
        fed = run_trace(engine, raw)

        expected = []
        seen: dict[str, list[float]] = {"s0": [], "s1": [], "s2": []}
        for name, ts in fed:
            if name == "s2":
                # most recent s1 strictly before ts, then most recent s0
                # strictly before that.
                s1_candidates = [u for u in seen["s1"] if u < ts]
                if s1_candidates:
                    s1 = max(s1_candidates)
                    s0_candidates = [u for u in seen["s0"] if u < s1]
                    if s0_candidates:
                        expected.append((max(s0_candidates), s1, ts))
            seen[name].append(ts)
        got = [
            tuple(t.ts for t in m.all_tuples()) for m in op.matches
        ]
        assert got == expected

    @given(trace_strategy(3))
    @settings(max_examples=60, deadline=None)
    def test_chronicle_consumes_each_tuple_once(self, raw):
        engine = build_engine(3)
        op = make_sequence_operator(
            engine, [SeqArg(f"s{i}") for i in range(3)],
            mode=PairingMode.CHRONICLE,
        )
        run_trace(engine, raw)
        used: set[tuple[float, int]] = set()
        for match in op.matches:
            for tup in match.all_tuples():
                key = (tup.ts, tup.seq)
                assert key not in used, "tuple reused under CHRONICLE"
                used.add(key)

    @given(trace_strategy(2, max_len=30))
    @settings(max_examples=60, deadline=None)
    def test_consecutive_matches_are_adjacent(self, raw):
        engine = build_engine(2)
        op = make_sequence_operator(
            engine, [SeqArg("s0"), SeqArg("s1")],
            mode=PairingMode.CONSECUTIVE,
        )
        fed = run_trace(engine, raw)
        order = [ts for __, ts in fed]
        for match in op.matches:
            stamps = [t.ts for t in match.all_tuples()]
            i = order.index(stamps[0])
            assert order[i : i + 2] == stamps  # adjacent in joint history

    @given(trace_strategy(2, max_len=30))
    @settings(max_examples=40, deadline=None)
    def test_matches_are_time_ordered(self, raw):
        for mode in PairingMode:
            engine = build_engine(2)
            op = make_sequence_operator(
                engine, [SeqArg("s0"), SeqArg("s1")], mode=mode
            )
            run_trace(engine, raw)
            for match in op.matches:
                stamps = [(t.ts, t.seq) for t in match.all_tuples()]
                assert stamps == sorted(stamps)


class TestStarProperties:
    @given(
        st.lists(st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
                 min_size=1, max_size=25),
    )
    @settings(max_examples=60, deadline=None)
    def test_runs_partition_the_product_stream(self, gaps):
        """With a gap threshold, CHRONICLE star runs never share or drop
        product tuples: every product lands in exactly one emitted run when
        a case reading follows each run."""
        engine = Engine()
        engine.create_stream("p", "tagid str, tagtime float")
        engine.create_stream("c", "tagid str, tagtime float")
        op = make_sequence_operator(
            engine,
            [SeqArg("p", starred=True, max_gap=1.0), SeqArg("c")],
            mode=PairingMode.CHRONICLE,
        )
        t = 0.0
        stamps = []
        for gap in gaps:
            t += gap
            engine.push("p", {"tagid": f"p{t:g}", "tagtime": t}, ts=t)
            stamps.append(t)
        # Enough case readings to drain every run.
        for i in range(len(gaps)):
            t += 10.0
            engine.push("c", {"tagid": f"c{i}", "tagtime": t}, ts=t)
        emitted = [t.ts for m in op.matches for t in m.run_for("p")]
        assert sorted(emitted) == stamps

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_longest_match_count(self, n_products):
        engine = Engine()
        engine.create_stream("p", "tagid str, tagtime float")
        engine.create_stream("c", "tagid str, tagtime float")
        op = make_sequence_operator(
            engine, [SeqArg("p", starred=True), SeqArg("c")],
            mode=PairingMode.CHRONICLE,
        )
        for i in range(n_products):
            engine.push("p", {"tagid": f"p{i}", "tagtime": float(i)},
                        ts=float(i))
        engine.push("c", {"tagid": "c", "tagtime": 100.0}, ts=100.0)
        assert len(op.matches) == 1
        assert op.matches[0].count("p") == n_products


# ---------------------------------------------------------------------------
# Window buffer properties
# ---------------------------------------------------------------------------

SCHEMA = Schema.of("v")


class TestWindowProperties:
    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
                 min_size=1, max_size=50),
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_range_buffer_invariant(self, gaps, duration):
        buffer = RangeWindowBuffer(duration)
        t = 0.0
        for gap in gaps:
            t += gap
            buffer.append(Tuple(SCHEMA, ["x"], t))
            held = list(buffer)
            assert all(t - duration <= tup.ts <= t for tup in held)
            # nothing inside the window was evicted:
            assert held[0].ts >= t - duration

    @given(
        st.lists(st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
                 min_size=2, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_tuples_preceding_consistency(self, gaps):
        buffer = RangeWindowBuffer(None)
        tuples = []
        t = 0.0
        for gap in gaps:
            t += gap
            tup = Tuple(SCHEMA, ["x"], t)
            buffer.append(tup)
            tuples.append(tup)
        anchor = tuples[-1]
        duration = t / 2
        got = list(buffer.tuples_preceding(anchor, duration))
        expected = [
            u for u in tuples[:-1] if anchor.ts - duration <= u.ts
        ]
        assert got == expected


# ---------------------------------------------------------------------------
# EPC properties
# ---------------------------------------------------------------------------


class TestEpcProperties:
    @given(
        st.integers(min_value=0, max_value=(1 << 28) - 1),
        st.integers(min_value=0, max_value=(1 << 24) - 1),
        st.integers(min_value=0, max_value=(1 << 36) - 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_text_roundtrip(self, company, product, serial):
        code = EpcCode(company, product, serial)
        assert EpcCode.parse(str(code)) == code

    @given(
        st.integers(min_value=0, max_value=(1 << 28) - 1),
        st.integers(min_value=0, max_value=(1 << 24) - 1),
        st.integers(min_value=0, max_value=(1 << 36) - 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_gid96_roundtrip(self, company, product, serial):
        code = EpcCode(company, product, serial)
        assert EpcCode.from_gid96(code.to_gid96()) == code

    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20000),
        st.integers(min_value=0, max_value=10000),
        st.integers(min_value=0, max_value=10000),
    )
    @settings(max_examples=100, deadline=None)
    def test_pattern_matches_definition(self, company, product, serial,
                                        lo_raw, width):
        lo = lo_raw
        hi = lo_raw + width
        pattern = EpcPattern(f"20.*.[{lo}-{hi}]")
        code = EpcCode(company, product, serial)
        expected = company == 20 and lo <= serial <= hi
        assert pattern.matches(code) is expected

    @given(st.integers(min_value=0, max_value=9999),
           st.integers(min_value=0, max_value=9999))
    @settings(max_examples=40, deadline=None)
    def test_sql_translation_agrees(self, serial, lo_raw):
        lo, hi = sorted((lo_raw, lo_raw + 500))
        pattern = EpcPattern(f"20.*.[{lo}-{hi}]")
        sql = pattern_to_sql(pattern)
        engine = Engine()
        engine.create_stream("readings", "tid str")
        handle = engine.query(f"SELECT tid FROM readings WHERE {sql}")
        epc = f"20.1.{serial}"
        engine.push("readings", {"tid": epc}, ts=0.0)
        assert (len(handle.rows()) == 1) is pattern.matches(epc)


# ---------------------------------------------------------------------------
# Dedup idempotence
# ---------------------------------------------------------------------------


class TestDedupProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["t1", "t2", "t3"]),
                st.floats(min_value=0.05, max_value=2.5, allow_nan=False),
            ),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_dedup_output_has_no_window_duplicates(self, raw):
        """Example 1's output never contains two same-key tuples within 1s
        — which also makes the filter idempotent."""
        engine = Engine()
        engine.create_stream(
            "readings", "reader_id str, tag_id str, read_time float"
        )
        engine.create_stream(
            "cleaned_readings", "reader_id str, tag_id str, read_time float"
        )
        engine.query("""
            INSERT INTO cleaned_readings
            SELECT * FROM readings AS r1 WHERE NOT EXISTS
              (SELECT * FROM TABLE(readings OVER
                 (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
               WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)
        """)
        out = engine.collect("cleaned_readings")
        t = 0.0
        for tag, gap in raw:
            t += gap
            engine.push(
                "readings",
                {"reader_id": "r", "tag_id": tag, "read_time": t},
                ts=t,
            )
        by_tag: dict[str, list[float]] = {}
        for tup in out.results:
            by_tag.setdefault(tup["tag_id"], []).append(tup.ts)
        for stamps in by_tag.values():
            for a, b in zip(stamps, stamps[1:]):
                # Strictly-greater up to one float ulp: `anchor - 1.0`
                # computed inside the window probe may differ from `b - a`
                # by rounding at the exact boundary.
                assert b - a > 1.0 - 1e-9


# ---------------------------------------------------------------------------
# Clock properties
# ---------------------------------------------------------------------------


class TestClockProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                 min_size=1, max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_timer_fires_exactly_once_in_order(self, deadlines):
        clock = VirtualClock()
        fired: list[float] = []
        for deadline in deadlines:
            clock.schedule(deadline, fired.append)
        clock.advance(max(deadlines) + 1)
        assert fired == sorted(deadlines)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
                 min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_advance_equals_single_advance(self, gaps):
        deadlines = []
        t = 0.0
        for gap in gaps:
            t += gap
            deadlines.append(t)
        single = VirtualClock()
        fired_single: list[float] = []
        for d in deadlines:
            single.schedule(d, fired_single.append)
        single.advance(t + 1)

        stepped = VirtualClock()
        fired_stepped: list[float] = []
        for d in deadlines:
            stepped.schedule(d, fired_stepped.append)
        u = 0.0
        for gap in gaps:
            u += gap / 2
            stepped.advance(u)
            u += gap / 2
            stepped.advance(u)
        stepped.advance(t + 1)
        assert fired_single == fired_stepped


class TestStarReferenceModel:
    """The star runtime against an independent forward simulation of the
    documented semantics for SEQ(A*, B) MODE CHRONICLE."""

    @staticmethod
    def reference(events, max_gap):
        """events: list of ('a'|'b', ts).  Returns list of (run, b_ts)."""
        closed = []           # FIFO of closed runs
        open_run = []
        emitted = []
        for kind, ts in events:
            if kind == "a":
                if open_run and ts - open_run[-1] > max_gap:
                    closed.append(open_run)
                    open_run = []
                open_run.append(ts)
            else:  # b
                if closed:
                    emitted.append((closed.pop(0), ts))
                elif open_run:
                    emitted.append((open_run, ts))
                    open_run = []
        return emitted

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
            ),
            min_size=1, max_size=40,
        ),
        st.floats(min_value=0.2, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_chronicle_star_matches_reference(self, raw, max_gap):
        events = []
        t = 0.0
        for kind, gap in raw:
            t += gap
            events.append((kind, t))

        engine = Engine()
        engine.create_stream("a", "tagid str, tagtime float")
        engine.create_stream("b", "tagid str, tagtime float")
        from repro.core.operators import (
            PairingMode, SeqArg, make_sequence_operator,
        )

        op = make_sequence_operator(
            engine,
            [SeqArg("a", starred=True, max_gap=max_gap), SeqArg("b")],
            mode=PairingMode.CHRONICLE,
        )
        for kind, ts in events:
            engine.push(kind, {"tagid": kind, "tagtime": ts}, ts=ts)

        got = [
            ([t.ts for t in m.run_for("a")], m.tuple_for("b").ts)
            for m in op.matches
        ]
        expected = self.reference(events, max_gap)
        assert got == expected

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
            ),
            min_size=1, max_size=40,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_chronicle_star_runs_disjoint(self, raw):
        events = []
        t = 0.0
        for kind, gap in raw:
            t += gap
            events.append((kind, t))
        engine = Engine()
        engine.create_stream("a", "tagid str, tagtime float")
        engine.create_stream("b", "tagid str, tagtime float")
        from repro.core.operators import (
            PairingMode, SeqArg, make_sequence_operator,
        )

        op = make_sequence_operator(
            engine,
            [SeqArg("a", starred=True, max_gap=1.0), SeqArg("b")],
            mode=PairingMode.CHRONICLE,
        )
        for kind, ts in events:
            engine.push(kind, {"tagid": kind, "tagtime": ts}, ts=ts)
        seen: set[float] = set()
        for match in op.matches:
            for tup in match.run_for("a"):
                assert tup.ts not in seen  # no A tuple packed twice
                seen.add(tup.ts)
