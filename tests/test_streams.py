"""Unit tests for streams and the stream registry."""

import pytest

from repro.dsms.errors import OutOfOrderError, SchemaError, UnknownStreamError
from repro.dsms.schema import Schema
from repro.dsms.streams import Stream, StreamRegistry
from repro.dsms.tuples import Tuple

SCHEMA = Schema.parse("tagid str, tagtime float")


def make_stream(**kw) -> Stream:
    return Stream("s", SCHEMA, **kw)


class TestPush:
    def test_subscribers_receive_tuples(self):
        stream = make_stream()
        got = []
        stream.subscribe(got.append)
        stream.push_row(["a", 1.0], ts=1.0)
        assert len(got) == 1
        assert got[0]["tagid"] == "a"

    def test_multiple_subscribers_in_order(self):
        stream = make_stream()
        order = []
        stream.subscribe(lambda t: order.append("first"))
        stream.subscribe(lambda t: order.append("second"))
        stream.push_row(["a", 1.0], ts=1.0)
        assert order == ["first", "second"]

    def test_unsubscribe(self):
        stream = make_stream()
        got = []
        unsubscribe = stream.subscribe(got.append)
        unsubscribe()
        stream.push_row(["a", 1.0], ts=1.0)
        assert got == []

    def test_unsubscribe_twice_is_noop(self):
        stream = make_stream()
        unsubscribe = stream.subscribe(lambda t: None)
        unsubscribe()
        unsubscribe()

    def test_schema_mismatch_rejected(self):
        stream = make_stream()
        wrong = Tuple(Schema.of("other"), ["x"], 0.0)
        with pytest.raises(SchemaError):
            stream.push(wrong)

    def test_stream_name_stamped_on_tuples(self):
        stream = make_stream()
        got = []
        stream.subscribe(got.append)
        stream.push_row(["a", 1.0], ts=1.0)
        assert got[0].stream == "s"

    def test_count_and_last_ts(self):
        stream = make_stream()
        stream.push_row(["a", 1.0], ts=1.0)
        stream.push_row(["b", 2.0], ts=2.0)
        assert stream.count == 2
        assert stream.last_ts == 2.0

    def test_push_dict(self):
        stream = make_stream()
        got = []
        stream.subscribe(got.append)
        stream.push_dict({"tagid": "z"}, ts=3.0)
        assert got[0]["tagid"] == "z"
        assert got[0]["tagtime"] is None


class TestOrdering:
    def test_out_of_order_rejected_by_default(self):
        stream = make_stream()
        stream.push_row(["a", 2.0], ts=2.0)
        with pytest.raises(OutOfOrderError):
            stream.push_row(["b", 1.0], ts=1.0)

    def test_equal_timestamps_allowed(self):
        stream = make_stream()
        stream.push_row(["a", 2.0], ts=2.0)
        stream.push_row(["b", 2.0], ts=2.0)
        assert stream.count == 2

    def test_reorder_buffer_sorts_within_slack(self):
        stream = make_stream(allow_out_of_order=True, reorder_slack=5.0)
        got = []
        stream.subscribe(got.append)
        stream.push_row(["a", 3.0], ts=3.0)
        stream.push_row(["b", 1.0], ts=1.0)   # late, within slack
        stream.push_row(["c", 10.0], ts=10.0)
        stream.flush()
        assert [t["tagid"] for t in got] == ["b", "a", "c"]

    def test_reorder_buffer_drops_too_late(self):
        stream = make_stream(allow_out_of_order=True, reorder_slack=1.0)
        got = []
        stream.subscribe(got.append)
        stream.push_row(["a", 10.0], ts=10.0)
        stream.push_row(["late", 1.0], ts=1.0)  # far beyond slack: dropped
        stream.flush()
        assert [t["tagid"] for t in got] == ["a"]

    def test_flush_releases_held_tuples(self):
        stream = make_stream(allow_out_of_order=True, reorder_slack=100.0)
        got = []
        stream.subscribe(got.append)
        stream.push_row(["a", 1.0], ts=1.0)
        assert got == []  # held back by slack
        stream.flush()
        assert len(got) == 1


class TestRegistry:
    def test_create_and_get(self):
        registry = StreamRegistry()
        registry.create("Readings", "tagid str")
        assert registry.get("readings").name == "Readings"  # case-insensitive

    def test_duplicate_rejected(self):
        registry = StreamRegistry()
        registry.create("s", "a")
        with pytest.raises(SchemaError):
            registry.create("S", "a")

    def test_unknown_raises_with_listing(self):
        registry = StreamRegistry()
        registry.create("known", "a")
        with pytest.raises(UnknownStreamError, match="known"):
            registry.get("missing")

    def test_schema_from_iterable(self):
        registry = StreamRegistry()
        stream = registry.create("s", ["a", "b"])
        assert stream.schema.names == ("a", "b")

    def test_contains_len_iter(self):
        registry = StreamRegistry()
        registry.create("a", "x")
        registry.create("b", "x")
        assert "a" in registry and "c" not in registry
        assert len(registry) == 2
        assert {s.name for s in registry} == {"a", "b"}

    def test_drop(self):
        registry = StreamRegistry()
        registry.create("a", "x")
        registry.drop("a")
        assert "a" not in registry
