"""Differential, mirror-upkeep, and checkpoint tests for the pairing tier.

The pairing-kernel tier batches the SEQ match-enumeration hot path: each
partition keeps a columnar mirror of its history, and cross-alias
conjuncts are lowered to per-stage candidate masks — Python columnar
closures (vector tier) and two-operand C kernels over the mirror's
packed buffers (native tier).  Masks only prune: every survivor re-runs
the scalar pairing check, so the contract is the vectorized-admission
one, end to end — whatever the host, query output must be
**byte-identical** to the interpreted engine in values, timestamps and
order.

Covered here, all under the ``pairing`` marker:

* every paper example re-run through all four tiers (inherited from the
  native-tier suite, so the workloads stay byte-for-byte the same),
* dense SEQ traces that actually engage the masks (UNRESTRICTED and
  RECENT, two- and four-stage chains), plus NULL-heavy, unicode /
  embedded-NUL, and Kleene-star traces,
* mirror upkeep under window eviction and the checkpoint round trip
  (mirrors are derived state: restore must rebuild them exactly),
* the fallback chain and the ``execution_tier()`` pairing report.
"""

import pytest

from repro.core.operators.seq import SeqOperator
from repro.dsms import native as native_mod
from repro.dsms.checkpoint import capture_engine_state, restore_engine_state
from repro.dsms.engine import Engine
from tests.test_native_codegen import (
    HAS_CC,
    TIER_FLAGS,
    TestPaperQueryDifferentials,
    results_of,
    run_tiers,
)

pytestmark = pytest.mark.pairing


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets a private kernel cache directory."""
    monkeypatch.setenv(native_mod.CACHE_ENV, str(tmp_path / "kernel-cache"))


def seq_operators(engine):
    return [c for c in engine.checkpointables if isinstance(c, SeqOperator)]


def dense_seq_batches(n=400, tags=8, nulls=False):
    """Interleaved a/b batches dense enough to exceed the mask floor."""
    batches = []
    ts = 0.0
    for start in range(0, n, 100):
        a_rows = []
        b_rows = []
        for i in range(100):
            k = start + i
            v = None if nulls and k % 7 == 0 else ((k * 13) % 100) / 100.0
            w = None if nulls and k % 5 == 0 else ((k * 29) % 100) / 100.0
            a_rows.append(({"tag_id": f"t{k % tags}", "v": v}, ts + i))
            b_rows.append(
                ({"tag_id": f"t{(k * 3) % tags}", "w": w}, ts + 150.0 + i)
            )
        batches.append(("a", a_rows))
        batches.append(("b", b_rows))
        ts += 400.0
    return batches


class TestPaperQueriesUnderPairingTiers(TestPaperQueryDifferentials):
    """All eight paper examples, re-collected under the pairing marker.

    The workloads and assertions are inherited byte-for-byte from the
    native-tier suite; what changed underneath them in this layer is the
    SEQ enumeration path (mirrors + stage masks), so re-running them
    here is the regression net for the pairing tier specifically.
    """


class TestPairingMaskDifferentials:
    AB_DDL = (("a", "tag_id str, v float"), ("b", "tag_id str, w float"))

    def _setup(self, query):
        def setup(engine):
            for name, ddl in self.AB_DDL:
                engine.create_stream(name, ddl)
            return [results_of(engine.query(query))]

        return setup

    def test_unrestricted_masks_engage(self):
        query = (
            "SELECT X.tag_id, X.v, Y.w FROM a AS X, b AS Y "
            "WHERE SEQ(X, Y) AND X.tag_id = Y.tag_id AND Y.w - X.v > 0.3"
        )
        (out,), native_engine = run_tiers(
            self._setup(query), dense_seq_batches()
        )
        assert out
        (op,) = seq_operators(native_engine)
        assert op._pairing_plan is not None
        if HAS_CC:
            stats = native_engine.native_state.stats()
            assert stats["pairing_masked_windows"] > 0
            assert stats["pairing_masked_rows"] > 0

    def test_vector_plan_without_native(self):
        engine = Engine()  # vector tier, no native
        for name, ddl in self.AB_DDL:
            engine.create_stream(name, ddl)
        engine.query(
            "SELECT X.tag_id FROM a AS X, b AS Y "
            "WHERE SEQ(X, Y) AND X.tag_id = Y.tag_id AND Y.w - X.v > 0.3"
        )
        (op,) = seq_operators(engine)
        assert op._pairing_plan is not None
        # Stage 0 scans X's history while Y is bound: it must carry the
        # mask; mirrors are built exactly for plan-covered stages.
        assert op._pairing_plan[0] is not None
        assert op._mirror_specs is not None

    def test_recent_mode_masks(self):
        query = (
            "SELECT X.tag_id, X.v, Y.w FROM a AS X, b AS Y "
            "WHERE SEQ(X, Y) OVER [300 SECONDS PRECEDING Y] MODE RECENT "
            "AND X.tag_id = Y.tag_id AND Y.w - X.v > 0.3"
        )
        (out,), native_engine = run_tiers(
            self._setup(query), dense_seq_batches()
        )
        assert out
        (op,) = seq_operators(native_engine)
        assert op._use_cuts and op._pairing_plan is not None
        if HAS_CC:
            assert (
                native_engine.native_state.stats()["pairing_masked_windows"]
                > 0
            )

    def test_four_stage_chain_masks_multiple_stages(self):
        query = """
        SELECT C1.tagid, C1.tagtime, C4.tagtime
        FROM C1, C2, C3, C4
        WHERE SEQ(C1, C2, C3, C4)
        AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid
        AND C4.tagtime - C1.tagtime < 900
        AND C3.tagtime - C2.tagtime < 400
        """

        def setup(engine):
            for name in ("c1", "c2", "c3", "c4"):
                engine.create_stream(
                    name, "readerid str, tagid str, tagtime float"
                )
            return [results_of(engine.query(query))]

        batches = []
        ts = 0.0
        for wave in range(30):
            for stream in ("c1", "c2", "c3", "c4"):
                step = 500.0 if wave % 5 == 2 and stream == "c3" else 25.0
                ts += step
                batches.append((stream, [
                    ({"readerid": stream, "tagid": f"pallet{wave % 6}",
                      "tagtime": ts}, ts)
                ]))
        (out,), native_engine = run_tiers(setup, batches)
        assert out
        (op,) = seq_operators(native_engine)
        plan = op._pairing_plan
        assert plan is not None
        # C4.tagtime - C1.tagtime is decidable at stage 0 (scanning C1
        # with C4 bound); C3.tagtime - C2.tagtime at stage 1.
        assert plan[0] is not None and plan[1] is not None

    def test_null_heavy_trace(self):
        query = (
            "SELECT X.tag_id, X.v, Y.w FROM a AS X, b AS Y "
            "WHERE SEQ(X, Y) AND X.tag_id = Y.tag_id AND Y.w - X.v > 0.2"
        )
        (out,), _ = run_tiers(
            self._setup(query), dense_seq_batches(nulls=True)
        )
        assert out

    def test_unicode_and_embedded_nul_poison_packed_side(self):
        """Unicode string operands flow through the interned-id path;
        an embedded NUL cannot be interned, poisons only the mirror's
        packed side, and every tier still agrees byte-for-byte."""
        query = (
            "SELECT X.tag_id, Y.tag_id FROM a AS X, b AS Y "
            "WHERE SEQ(X, Y) AND X.loc <> Y.loc AND Y.w - X.v > 0.1"
        )

        def setup(engine):
            engine.create_stream("a", "tag_id str, v float, loc str")
            engine.create_stream("b", "tag_id str, w float, loc str")
            return [results_of(engine.query(query))]

        locs = ("ガ-dock", "café", "yard", "b\x00elt", None)
        batches = []
        ts = 0.0
        for start in range(0, 200, 50):
            a_rows = [({"tag_id": f"t{(start + i) % 4}",
                        "v": ((start + i) * 13 % 100) / 100.0,
                        "loc": locs[(start + i) % 5]}, ts + i)
                      for i in range(50)]
            b_rows = [({"tag_id": f"t{(start + i) % 4}",
                        "w": ((start + i) * 29 % 100) / 100.0,
                        "loc": locs[(start + i) % 3]}, ts + 80.0 + i)
                      for i in range(50)]
            batches.append(("a", a_rows))
            batches.append(("b", b_rows))
            ts += 200.0
        (out,), native_engine = run_tiers(setup, batches)
        assert out
        (op,) = seq_operators(native_engine)
        for partition in op._partitions.values():
            if partition.mirrors is None:
                continue
            for store in partition.mirrors:
                if store is None or not store.packed_slots:
                    continue
                # The NUL-carrying trace must have poisoned the packed
                # side while the object columns stay exact.
                assert store.ok
                assert not store.native_ok

    def test_kleene_star_trace(self):
        """Star sequences take the StarSeqOperator path — no mirrors,
        no masks — and must be untouched by the pairing tier."""
        query = """
        SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
        FROM R1, R2
        WHERE SEQ(R1*, R2) MODE CHRONICLE
        AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
        AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
        """

        def setup(engine):
            engine.create_stream("r1", "readerid str, tagid str, tagtime float")
            engine.create_stream("r2", "readerid str, tagid str, tagtime float")
            return [results_of(engine.query(query))]

        batches = []
        ts = 0.0
        for case in range(10):
            items = [({"readerid": "r1", "tagid": f"p{case}_{item}",
                       "tagtime": ts + item * 0.4}, ts + item * 0.4)
                     for item in range(2 + case % 4)]
            ts += len(items) * 0.4
            batches.append(("r1", items))
            ts += 2.0
            batches.append(
                ("r2", [({"readerid": "r2", "tagid": f"case{case}",
                          "tagtime": ts}, ts)])
            )
            ts += 12.0
        (out,), native_engine = run_tiers(setup, batches)
        assert len(out) == 10
        assert not seq_operators(native_engine)  # star path, not SeqOperator


class TestMirrorUpkeep:
    QUERY = (
        "SELECT X.tag_id, X.v, Y.w FROM a AS X, b AS Y "
        "WHERE SEQ(X, Y) OVER [200 SECONDS PRECEDING Y] "
        "AND X.tag_id = Y.tag_id AND Y.w - X.v > 0.2"
    )

    def _build(self, **flags):
        engine = Engine(**flags)
        engine.create_stream("a", "tag_id str, v float")
        engine.create_stream("b", "tag_id str, w float")
        handle = engine.query(self.QUERY)
        return engine, handle

    @staticmethod
    def _assert_mirrors_exact(op):
        checked = 0
        for partition in op._partitions.values():
            assert partition.mirrors is not None
            for store, history in zip(
                partition.mirrors, partition.histories
            ):
                if store is None:
                    continue
                checked += 1
                assert store.ok
                assert store.timestamps == [t.ts for t in history]
                for j, column in enumerate(store.columns):
                    assert column == [t.values[j] for t in history]
                if store.packed_slots and store.native_ok:
                    assert len(store.packed_ts) == len(history)
                    for buf in store.packed:
                        assert len(buf) == len(history)
        assert checked  # the plan covered at least one stage somewhere

    def test_eviction_keeps_mirrors_in_sync(self):
        engine, _handle = self._build()
        for stream, rows in dense_seq_batches():
            for values, ts in rows:
                engine.push(stream, values, ts=ts)
        (op,) = seq_operators(engine)
        assert op._pairing_plan is not None
        # The 200 s window over a 1600 s trace has evicted from the
        # front of every surviving history; the mirrors must have
        # tracked those evictions row for row.
        assert any(
            partition.removed[0] > 0
            for partition in op._partitions.values()
        )
        self._assert_mirrors_exact(op)

    @pytest.mark.parametrize(
        "flags",
        [{}] + ([{"native_admission": True}] if HAS_CC else []),
        ids=["vector"] + (["native"] if HAS_CC else []),
    )
    def test_checkpoint_roundtrip_rebuilds_mirrors(self, flags):
        batches = dense_seq_batches()
        half = len(batches) // 2

        source, source_handle = self._build(**flags)
        for stream, rows in batches[:half]:
            for values, ts in rows:
                source.push(stream, values, ts=ts)
        state = capture_engine_state(source)

        restored, restored_handle = self._build(**flags)
        restore_engine_state(restored, state)

        (src_op,) = seq_operators(source)
        (dst_op,) = seq_operators(restored)
        assert dst_op._pairing_plan is not None
        self._assert_mirrors_exact(dst_op)
        # The rebuilt mirrors must equal the source's, column for
        # column — including the packed buffers the C kernels read.
        assert set(src_op._partitions) == set(dst_op._partitions)
        for key, src_part in src_op._partitions.items():
            dst_part = dst_op._partitions[key]
            for src_store, dst_store in zip(
                src_part.mirrors, dst_part.mirrors
            ):
                if src_store is None:
                    assert dst_store is None
                    continue
                assert dst_store.columns == src_store.columns
                assert dst_store.timestamps == src_store.timestamps
                assert dst_store.packed_slots == src_store.packed_slots
                assert dst_store.native_ok == src_store.native_ok
                if src_store.native_ok:
                    for src_buf, dst_buf in zip(
                        src_store.packed, dst_store.packed
                    ):
                        assert dst_buf == src_buf
                    assert dst_store.packed_ts == src_store.packed_ts

        # And the restored engine must keep producing exactly what the
        # uninterrupted source produces.
        seen = len(source_handle.results)
        for stream, rows in batches[half:]:
            for values, ts in rows:
                source.push(stream, values, ts=ts)
                restored.push(stream, values, ts=ts)
        tail = [
            (t.values, t.ts) for t in source_handle.results[seen:]
        ]
        assert [
            (t.values, t.ts) for t in restored_handle.results
        ] == tail
        assert tail  # the continuation actually matched something


class TestFallbackAndReporting:
    QUERY = (
        "SELECT X.tag_id FROM a AS X, b AS Y "
        "WHERE SEQ(X, Y) AND X.tag_id = Y.tag_id AND Y.w - X.v > 0.3"
    )

    def _run(self, **flags):
        engine = Engine(**flags)
        engine.create_stream("a", "tag_id str, v float")
        engine.create_stream("b", "tag_id str, w float")
        handle = engine.query(self.QUERY)
        for stream, rows in dense_seq_batches(n=200):
            for values, ts in rows:
                engine.push(stream, values, ts=ts)
        return engine, [(t.values, t.ts) for t in handle.results]

    def test_disable_env_degrades_pairing_with_admission(self, monkeypatch):
        monkeypatch.setenv(native_mod.DISABLE_ENV, "1")
        engine, out = self._run(native_admission=True)
        tier = engine.execution_tier()
        assert tier["pairing"] == {"requested": "native", "active": "vector"}
        assert engine.native_state.stats()["kernels_built"] == 0
        _, reference = self._run(
            compile_expressions=False, vectorized_admission=False
        )
        assert out == reference

    def test_tier_report_carries_pairing_ladder(self):
        assert Engine().execution_tier()["pairing"] == {
            "requested": "vector", "active": "vector",
        }
        assert Engine(
            compile_expressions=False, vectorized_admission=False
        ).execution_tier()["pairing"] == {
            "requested": "interpreted", "active": "interpreted",
        }

    def test_sharded_tier_report_carries_pairing(self, monkeypatch):
        from repro.dsms.sharding import ShardedEngine

        monkeypatch.setenv(native_mod.DISABLE_ENV, "1")
        sharded = ShardedEngine(n_shards=2, native_admission=True)
        tier = sharded.execution_tier()
        assert tier["pairing"] == {"requested": "native", "active": "vector"}
