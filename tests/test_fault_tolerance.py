"""Fault-tolerant sharded execution tests.

The recovery contract under test: with ``fault_tolerance='restart'``,
killing (or wedging, or corrupting the input of) any one shard worker
mid-trace must yield merged output *byte-identical* to an unfaulted
single-engine run — checkpoint restore plus replay-log re-delivery plus
duplicate suppression reconstructs the exact stamped row sequence.
Under ``'degrade'`` the dropped shard's partitions — and only those —
go stale, and the engine says so.

Checkpoint round-trip units (capture/restore on a single Engine) and the
supervisor's escalation policy are tested without worker processes; the
end-to-end injection tests are marked ``transport`` and ``faults``.
"""

import pytest

from repro.dsms import Engine, ShardedEngine
from repro.dsms.checkpoint import capture_engine_state, restore_engine_state
from repro.dsms.errors import (
    CheckpointError,
    EslSemanticError,
    FrameCorrupt,
    TransportError,
    WorkerCrashed,
    WorkerHung,
)
from repro.dsms.faults import FaultPlan
from repro.dsms.sharding import shard_of
from repro.dsms.supervisor import ShardSupervisor, classify_failure
from repro.rfid import (
    build_dedup,
    build_dedup_sharded,
    build_quality_check,
    build_quality_check_sharded,
    dedup_workload,
    quality_check_workload,
)


def _dedup_pair(n_shards, **kwargs):
    workload = dedup_workload(n_tags=40, presences_per_tag=8, seed=7)
    expected = build_dedup(workload).feed().rows()
    scenario = build_dedup_sharded(
        workload, n_shards=n_shards, executor="parallel",
        batch_size=128, adaptive_batch=False, **kwargs,
    )
    return scenario, expected


def _quality_pair(n_shards, **kwargs):
    workload = quality_check_workload(n_products=120, seed=77)
    expected = build_quality_check(workload).feed().rows()
    scenario = build_quality_check_sharded(
        workload, n_shards=n_shards, executor="parallel",
        batch_size=32, adaptive_batch=False, **kwargs,
    )
    return scenario, expected


# -- differential recovery: restart ------------------------------------------


@pytest.mark.transport
@pytest.mark.faults
@pytest.mark.parametrize("n_shards", [2, 4])
@pytest.mark.parametrize("build", [_dedup_pair, _quality_pair],
                         ids=["dedup", "quality"])
def test_kill_one_worker_restart_matches_single_engine(build, n_shards):
    """Crash mid-batch (the kill lands between dispatch and ack): the
    restarted worker restores its checkpoint, replays the log, and the
    merged output is byte-identical to the unfaulted single-engine run."""
    victim = n_shards - 1
    plan = FaultPlan().kill_worker(victim, after_batches=2)
    scenario, expected = build(
        n_shards,
        fault_tolerance="restart",
        checkpoint_interval=20.0,
        fault_plan=plan,
    )
    with scenario.engine as engine:
        engine.start()
        assert scenario.feed().rows() == expected
        stats = engine.fault_stats()
        assert stats["recoveries"] >= 1
        assert stats["degraded_shards"] == []
        assert [e["kind"] for e in plan.events] == ["kill"]
        assert not engine.stale


@pytest.mark.transport
@pytest.mark.faults
def test_recovery_without_checkpoints_replays_from_start():
    """checkpoint_interval=None: the replay log spans the whole run and a
    crashed worker rebuilds from the spec, still byte-identical."""
    plan = FaultPlan().kill_worker(0, after_batches=2)
    scenario, expected = _dedup_pair(
        2, fault_tolerance="restart", fault_plan=plan,
    )
    with scenario.engine as engine:
        engine.start()
        assert scenario.feed().rows() == expected
        assert engine.fault_stats()["checkpoints"] == 0
        assert engine.fault_stats()["recoveries"] >= 1


@pytest.mark.transport
@pytest.mark.faults
def test_wedged_worker_detected_and_restarted():
    """SIGSTOP wedge: the worker stays alive but makes no progress; hang
    detection classifies it and restart recovers byte-identically."""
    plan = FaultPlan().wedge_worker(1, after_batches=3)
    scenario, expected = _dedup_pair(
        2,
        fault_tolerance="restart",
        checkpoint_interval=20.0,
        hang_timeout=1.0,
        fault_plan=plan,
    )
    with scenario.engine as engine:
        engine.start()
        assert scenario.feed().rows() == expected
        events = engine.fault_stats()["events"]
        assert any(e.get("failure") == "hang" for e in events)


@pytest.mark.transport
@pytest.mark.faults
def test_corrupt_frame_classified_and_recovered():
    """A flipped payload byte fails the worker-side CRC; the failure is
    classified as corruption (restartable) and restart recovers."""
    plan = FaultPlan().corrupt_frame(1, frame_index=2)
    scenario, expected = _dedup_pair(
        2, fault_tolerance="restart", checkpoint_interval=20.0,
        fault_plan=plan,
    )
    with scenario.engine as engine:
        engine.start()
        assert scenario.feed().rows() == expected
        events = engine.fault_stats()["events"]
        assert any(e.get("failure") == "corrupt" for e in events)


@pytest.mark.transport
@pytest.mark.faults
def test_fail_fast_still_raises_and_tears_down():
    """The default policy keeps the pre-existing contract: a crashed
    worker surfaces as WorkerCrashed and every worker is torn down."""
    plan = FaultPlan().kill_worker(1, after_batches=2)
    scenario, _ = _dedup_pair(2, fault_plan=plan)
    engine = scenario.engine
    try:
        engine.start()
        with pytest.raises(WorkerCrashed):
            scenario.feed()
        assert engine.alive_workers() == 0
    finally:
        engine.close()


# -- degrade ----------------------------------------------------------------


@pytest.mark.transport
@pytest.mark.faults
def test_degrade_flags_exactly_the_dropped_shards_partitions():
    plan = FaultPlan().kill_worker(1, after_batches=3)
    scenario, expected = _dedup_pair(
        2, fault_tolerance="degrade", max_restarts=0, fault_plan=plan,
    )
    with scenario.engine as engine:
        engine.start()
        rows = scenario.feed().rows()
        assert engine.degraded_shards == {1}
        assert engine.stale and scenario.handle.stale
        stale = set(engine.stale_partitions()[1])
        routed_to_1 = {
            f"20.1.{1000 + i}" for i in range(40)
            if shard_of(f"20.1.{1000 + i}", 2) == 1
        }
        assert stale == routed_to_1
        # Survivor partitions are complete; only dropped-shard rows differ.
        surviving = [r for r in expected if r["tag_id"] not in routed_to_1]
        assert [r for r in rows if r["tag_id"] not in routed_to_1] == surviving
        assert len(rows) < len(expected)


@pytest.mark.transport
@pytest.mark.faults
def test_degrade_after_restart_budget_exhausted():
    """With a budget of 1, the first crash restarts; killing the restarted
    worker again degrades the shard instead of raising."""
    plan = (
        FaultPlan()
        .kill_worker(1, after_batches=2)
        .kill_worker(1, after_batches=5)
    )
    scenario, _ = _dedup_pair(
        2, fault_tolerance="degrade", max_restarts=1,
        checkpoint_interval=20.0, fault_plan=plan,
    )
    with scenario.engine as engine:
        engine.start()
        scenario.feed().rows()
        stats = engine.fault_stats()
        assert stats["recoveries"] == 1
        assert stats["degraded_shards"] == [1]


# -- transport error surface --------------------------------------------------


@pytest.mark.transport
@pytest.mark.faults
def test_close_is_idempotent_with_dead_workers():
    plan = FaultPlan().kill_worker(0, after_batches=1)
    scenario, _ = _dedup_pair(2, fault_plan=plan)
    engine = scenario.engine
    engine.start()
    with pytest.raises(TransportError):
        scenario.feed()
    engine.close()
    engine.close()  # second close: no-op, no exception
    assert engine.alive_workers() == 0


@pytest.mark.transport
@pytest.mark.faults
def test_dropped_frame_raises_hang_not_deadlock():
    """A silently swallowed frame keeps its in-flight slot; hang detection
    turns the would-be deadlock into WorkerHung within the deadline."""
    plan = FaultPlan().drop_frame(1, frame_index=1)
    scenario, _ = _dedup_pair(2, hang_timeout=0.5, fault_plan=plan)
    engine = scenario.engine
    try:
        engine.start()
        with pytest.raises(WorkerHung):
            scenario.feed()
    finally:
        engine.close()


def test_fault_options_require_parallel_executor():
    for kwargs in (
        {"fault_tolerance": "restart"},
        {"checkpoint_interval": 5.0},
        {"hang_timeout": 1.0},
        {"fault_plan": FaultPlan()},
    ):
        with pytest.raises(EslSemanticError):
            ShardedEngine(n_shards=2, executor="serial", **kwargs)
    with pytest.raises(EslSemanticError):
        ShardedEngine(n_shards=2, executor="parallel",
                      fault_tolerance="retry-forever")


# -- supervisor policy units --------------------------------------------------


class TestSupervisor:
    def test_classification(self):
        assert classify_failure(WorkerCrashed("x")) == "crash"
        assert classify_failure(WorkerHung("x")) == "hang"
        assert classify_failure(FrameCorrupt("x")) == "corrupt"
        assert classify_failure(TransportError("x")) == "application"

    def test_fail_fast_always_raises(self):
        sup = ShardSupervisor("fail_fast", backoff_s=0.0)
        assert sup.on_failure(0, WorkerCrashed("x")) == "raise"

    def test_application_errors_never_restart(self):
        """Replaying input that raised an application error raises it
        again, so restart/degrade must not loop on it."""
        sup = ShardSupervisor("restart", backoff_s=0.0)
        assert sup.on_failure(0, TransportError("bad record")) == "raise"

    def test_restart_budget_then_raise_or_degrade(self):
        sup = ShardSupervisor("restart", max_restarts=2, backoff_s=0.0)
        assert sup.on_failure(0, WorkerCrashed("x")) == "restart"
        assert sup.on_failure(0, WorkerCrashed("x")) == "restart"
        assert sup.on_failure(0, WorkerCrashed("x")) == "raise"
        sup = ShardSupervisor("degrade", max_restarts=1, backoff_s=0.0)
        assert sup.on_failure(3, WorkerHung("x")) == "restart"
        assert sup.on_failure(3, WorkerHung("x")) == "degrade"
        assert sup.degraded == {3}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ShardSupervisor("panic")


# -- checkpoint round-trip units ----------------------------------------------


class TestCheckpointRoundTrip:
    def _roundtrip(self, make_engine, feed_half, feed_rest):
        """Run a workload split in two; checkpoint at the split on engine
        A, restore into a fresh engine B, feed the rest to both: outputs
        must agree exactly."""
        a_engine, a_handle = make_engine()
        b_engine, b_handle = make_engine()
        feed_half(a_engine)
        state = capture_engine_state(a_engine)
        restore_engine_state(b_engine, state)
        # B starts from the checkpointed cut: only post-restore emissions
        # can appear, and they must match A's post-checkpoint emissions.
        a_before = len(a_handle.results)
        b_before = len(b_handle.results)
        feed_rest(a_engine)
        feed_rest(b_engine)
        a_tail = a_handle.results[a_before:]
        b_tail = b_handle.results[b_before:]
        assert [t.values for t in a_tail] == [t.values for t in b_tail]
        assert [t.ts for t in a_tail] == [t.ts for t in b_tail]

    def test_seq_operator_roundtrip(self):
        workload = quality_check_workload(n_products=30, seed=5)
        half = len(workload.trace) // 2

        def make():
            scenario = build_quality_check(
                quality_check_workload(n_products=30, seed=5)
            )
            return scenario.engine, scenario.handle

        def feed_half(engine):
            for stream, values, ts in workload.trace[:half]:
                engine.push(stream, values, ts)

        def feed_rest(engine):
            for stream, values, ts in workload.trace[half:]:
                engine.push(stream, values, ts)
            engine.flush()

        self._roundtrip(make, feed_half, feed_rest)

    def test_window_probe_roundtrip(self):
        workload = dedup_workload(n_tags=10, presences_per_tag=4, seed=3)
        half = len(workload.trace) // 2

        def make():
            scenario = build_dedup(
                dedup_workload(n_tags=10, presences_per_tag=4, seed=3)
            )
            return scenario.engine, scenario.handle

        def feed_half(engine):
            for stream, values, ts in workload.trace[:half]:
                engine.push(stream, values, ts)

        def feed_rest(engine):
            for stream, values, ts in workload.trace[half:]:
                engine.push(stream, values, ts)
            engine.flush()

        self._roundtrip(make, feed_half, feed_rest)

    def test_aggregate_roundtrip(self):
        def make():
            engine = Engine()
            engine.create_stream("r", "tagid str, temp float")
            handle = engine.query(
                "SELECT tagid, avg(temp), count(temp) FROM r "
                "GROUP BY tagid",
                name="agg",
            )
            return engine, handle

        def feed_half(engine):
            for i in range(10):
                engine.push("r", {"tagid": f"t{i % 3}", "temp": float(i)},
                            ts=float(i))

        def feed_rest(engine):
            for i in range(10, 20):
                engine.push("r", {"tagid": f"t{i % 3}", "temp": float(i)},
                            ts=float(i))
            engine.flush()

        self._roundtrip(make, feed_half, feed_rest)

    def test_unsupported_operator_raises_checkpoint_error(self):
        engine = Engine()
        for name in ("a1", "a2", "a3"):
            engine.create_stream(name, "tagid str")
        engine.query(
            "SELECT A1.tagid FROM a1, a2, a3 WHERE EXCEPTION_SEQ(A1, A2, A3)",
            name="exc",
        )
        with pytest.raises(CheckpointError, match="EXCEPTION_SEQ"):
            capture_engine_state(engine)

    def test_version_mismatch_rejected(self):
        engine = Engine()
        engine.create_stream("s", "a str")
        state = capture_engine_state(engine)
        state["version"] = 999
        with pytest.raises(CheckpointError, match="version"):
            restore_engine_state(engine, state)
