"""Unit tests for plan descriptions and the optimizer report."""

import pytest

from repro import describe_handle, optimization_report
from repro.dsms import Engine


@pytest.fixture
def eng(engine):
    for name in ("c1", "c2", "c3", "c4", "r1", "r2"):
        engine.create_stream(name, "readerid str, tagid str, tagtime float")
    return engine


class TestDescribeHandle:
    def test_filter_query_plan(self, eng):
        handle = eng.query("SELECT tagid FROM c1")
        plan = describe_handle(handle)
        text = plan.render()
        assert "ContinuousQuery" in text
        assert "Pipeline" in text

    def test_seq_plan_shows_operator(self, eng):
        handle = eng.query(
            "SELECT C1.tagid FROM c1, c2 WHERE SEQ(C1, C2) MODE RECENT "
            "AND C1.tagid = C2.tagid"
        )
        text = describe_handle(handle).render()
        assert "SeqOperator" in text
        assert "mode=recent" in text
        assert "partitioned" in text
        # The equality join was fully hoisted into partitioning: no guard.
        assert "guarded" not in text
        assert "c1 AS C1" in text

    def test_star_plan_shows_gap(self, eng):
        handle = eng.query(
            "SELECT COUNT(R1*) FROM r1, r2 WHERE SEQ(R1*, R2) MODE CHRONICLE "
            "AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS"
        )
        text = describe_handle(handle).render()
        assert "StarSeqOperator" in text
        assert "r1* AS R1 gap-checked" in text

    def test_window_rendered(self, eng):
        handle = eng.query(
            "SELECT C1.tagid FROM c1, c2 WHERE SEQ(C1, C2) "
            "OVER [5 MINUTES PRECEDING C2]"
        )
        text = describe_handle(handle).render()
        assert "window=300" in text


class TestOptimizationReport:
    def test_temporal_report(self, eng):
        report = optimization_report(eng, """
            SELECT C1.tagid FROM c1, c2, c3, c4
            WHERE SEQ(C1, C2, C3, C4) MODE RECENT
            AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid
        """)
        assert report["kind"] == "temporal"
        assert report["temporal_op"] == "SEQ"
        assert report["mode"] == "RECENT"
        assert report["partition_field"] == "tagid"
        assert report["guard_terms"] == 0  # all three equalities hoisted

    def test_star_report(self, eng):
        report = optimization_report(eng, """
            SELECT R1.tagid FROM r1, r2 WHERE SEQ(R1*, R2)
            AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
        """)
        assert report["hoisted_gap_constraints"] == 1
        assert report["multi_return"] == "r1"

    def test_filter_report(self, eng):
        report = optimization_report(
            eng, "SELECT tagid FROM c1 WHERE tagid LIKE '20.%'"
        )
        assert report["kind"] == "filter"
        assert report["temporal_op"] is None

    def test_requires_single_select(self, eng):
        with pytest.raises(ValueError):
            optimization_report(eng, "CREATE STREAM zz(a)")


class TestDescribeExceptionHandles:
    def test_exception_seq_plan(self, eng):
        for name in ("a1", "a2", "a3"):
            eng.create_stream(name, "tagid str, tagtime float")
        handle = eng.query(
            "SELECT A1.tagid FROM a1, a2, a3 "
            "WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]"
        )
        text = describe_handle(handle).render()
        assert "ExceptionSeqOperator" in text
        assert "window=3600" in text
        assert "following" in text

    def test_symmetric_exists_plan_is_pipeline(self, eng):
        eng.create_stream("tag_readings", "tagid str, tagtype str, tagtime float")
        handle = eng.query("""
            SELECT item.tagid FROM tag_readings AS item
            WHERE item.tagtype = 'item' AND NOT EXISTS
              (SELECT * FROM tag_readings AS person
               OVER [1 MINUTES PRECEDING AND FOLLOWING item]
               WHERE person.tagtype = 'person')
        """)
        text = describe_handle(handle).render()
        assert "SymmetricExistsOperator" in text
        assert "NOT EXISTS" in text
