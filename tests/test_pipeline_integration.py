"""Integration tests: multi-stage pipelines chained through derived streams.

The paper's architectural argument (section 1) is that one DSMS covers the
whole RFID pipeline — cleaning, event detection, persistence, aggregation.
These tests compose several paper queries in one engine and check the
end-to-end results.
"""

import pytest

from repro.dsms import Engine


@pytest.fixture
def pipeline_engine():
    engine = Engine()
    engine.query("""
        CREATE STREAM raw_products(readerid str, tagid str, tagtime float);
        CREATE STREAM products(readerid str, tagid str, tagtime float);
        CREATE STREAM cases(readerid str, tagid str, tagtime float);
        CREATE STREAM packed_cases(casetag str, items int,
                                   first_item float, packed_at float);
        CREATE TABLE shipments(casetag str, items int, packed_at float);
    """)
    engine.query("""
        INSERT INTO products
        SELECT * FROM raw_products AS r1
        WHERE NOT EXISTS
          (SELECT * FROM TABLE(raw_products OVER
             (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
           WHERE r2.readerid = r1.readerid AND r2.tagid = r1.tagid)
    """)
    engine.query("""
        INSERT INTO packed_cases
        SELECT R2.tagid, COUNT(R1*), FIRST(R1*).tagtime, R2.tagtime
        FROM products AS R1, cases AS R2
        WHERE SEQ(R1*, R2) MODE CHRONICLE
        AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
        AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
    """)
    engine.query("""
        INSERT INTO shipments
        SELECT p.casetag, p.items, p.packed_at
        FROM packed_cases AS p WHERE NOT EXISTS
          (SELECT casetag FROM shipments AS s WHERE s.casetag = p.casetag)
    """)
    return engine


def pack_case(engine, case_name, item_tags, start, duplicates=3):
    t = start
    for tag in item_tags:
        for repeat in range(duplicates):
            ts = t + repeat * 0.2
            engine.push(
                "raw_products",
                {"readerid": "belt", "tagid": tag, "tagtime": ts},
                ts=ts,
            )
        t += 0.7
    case_ts = t + 2.0
    engine.push(
        "cases",
        {"readerid": "pack", "tagid": case_name, "tagtime": case_ts},
        ts=case_ts,
    )
    return case_ts + 3.0


class TestSupplyChainPipeline:
    def test_end_to_end_counts(self, pipeline_engine):
        t = 0.0
        sizes = [2, 4, 3]
        for index, size in enumerate(sizes):
            tags = [f"20.1.{index * 100 + i}" for i in range(size)]
            t = pack_case(pipeline_engine, f"case-{index}", tags, t)
        rows = list(pipeline_engine.table("shipments").scan())
        assert [row["items"] for row in rows] == sizes

    def test_dedup_stage_compresses(self, pipeline_engine):
        pack_case(pipeline_engine, "c", ["20.1.1", "20.1.2"], 0.0,
                  duplicates=4)
        assert pipeline_engine.stream("raw_products").count == 8
        assert pipeline_engine.stream("products").count == 2

    def test_duplicates_do_not_inflate_counts(self, pipeline_engine):
        pack_case(pipeline_engine, "c", ["20.1.1", "20.1.2", "20.1.3"], 0.0,
                  duplicates=4)
        rows = list(pipeline_engine.table("shipments").scan())
        assert rows[0]["items"] == 3  # not 12

    def test_re_reading_case_tag_does_not_duplicate_shipment(
        self, pipeline_engine
    ):
        end = pack_case(pipeline_engine, "c", ["20.1.1"], 0.0)
        # The case tag is read again later (e.g. at the door): no product
        # run is pending, so packed_cases gets nothing new.
        pipeline_engine.push(
            "cases",
            {"readerid": "door", "tagid": "c", "tagtime": end + 100.0},
            ts=end + 100.0,
        )
        assert len(pipeline_engine.table("shipments")) == 1

    def test_derived_stream_timestamps_monotone(self, pipeline_engine):
        t = 0.0
        for index in range(4):
            t = pack_case(pipeline_engine, f"case-{index}",
                          [f"20.2.{index}"], t)
        collector = pipeline_engine.collect("packed_cases")
        t = pack_case(pipeline_engine, "case-final", ["20.2.99"], t)
        stamps = [tup.ts for tup in collector]
        assert stamps == sorted(stamps)


class TestStagedAggregation:
    """Temporal detection cannot mix with aggregation in one query — the
    documented idiom is staging through a derived stream."""

    def test_aggregate_over_derived_events(self):
        engine = Engine()
        engine.query("""
            CREATE STREAM a(tagid str, tagtime float);
            CREATE STREAM b(tagid str, tagtime float);
            CREATE STREAM pairs(tagid str, latency float);
        """)
        engine.query("""
            INSERT INTO pairs
            SELECT A.tagid, B.tagtime - A.tagtime
            FROM a AS A, b AS B
            WHERE SEQ(A, B) MODE CHRONICLE AND A.tagid = B.tagid
        """)
        stats = engine.query(
            "SELECT count(latency), avg(latency), max(latency) FROM pairs"
        )
        for index, latency in enumerate([2.0, 5.0, 8.0]):
            base = index * 100.0
            engine.push("a", {"tagid": f"t{index}", "tagtime": base}, ts=base)
            engine.push("b", {"tagid": f"t{index}", "tagtime": base + latency},
                        ts=base + latency)
        final = stats.rows()[-1]
        assert final["count_latency"] == 3
        assert final["avg_latency"] == 5.0
        assert final["max_latency"] == 8.0

    def test_exception_stream_feeding_alert_count(self):
        engine = Engine()
        engine.query("""
            CREATE STREAM a1(tagid str, tagtime float);
            CREATE STREAM a2(tagid str, tagtime float);
            CREATE STREAM a3(tagid str, tagtime float);
            CREATE STREAM alerts(who str);
        """)
        engine.query("""
            INSERT INTO alerts
            SELECT A1.tagid FROM a1, a2, a3
            WHERE EXCEPTION_SEQ(A1, A2, A3)
        """)
        # count(*) rather than count(who): a wrong-start alert has no A1
        # binding, so its `who` is NULL and count(who) would skip it.
        counter = engine.query("SELECT count(*) FROM alerts")
        trace = [("a1", 1.0), ("a3", 2.0),          # violation
                 ("a1", 3.0), ("a2", 4.0), ("a3", 5.0),  # clean
                 ("a2", 6.0)]                          # wrong start
        for stream, ts in trace:
            engine.push(stream, {"tagid": "s", "tagtime": ts}, ts=ts)
        assert counter.rows()[-1]["count_all"] == 2
