"""Unit tests for the star-free SEQ operator and its pairing modes."""

import pytest

from repro.core.operators import (
    OperatorWindow,
    PairingMode,
    SeqArg,
    SeqOperator,
    make_sequence_operator,
)
from repro.dsms import Engine
from repro.dsms.errors import EslSemanticError


def build(engine, streams, mode, **kw):
    for name in streams:
        if name not in engine.streams:
            engine.create_stream(name, "tagid str, tagtime float")
    args = [SeqArg(name) for name in streams]
    return make_sequence_operator(engine, args, mode=mode, **kw)


def feed(engine, trace):
    for stream, ts in trace:
        engine.push(stream, {"tagid": "x", "tagtime": ts}, ts=ts)


def feed_tagged(engine, trace):
    for stream, tag, ts in trace:
        engine.push(stream, {"tagid": tag, "tagtime": ts}, ts=ts)


PAPER_TRACE = [
    ("c1", 1.0), ("c1", 2.0), ("c2", 3.0), ("c3", 4.0),
    ("c3", 5.0), ("c2", 6.0), ("c4", 7.0),
]


def chains(op):
    return [[t.ts for t in m.all_tuples()] for m in op.matches]


class TestPaperWorkedExample:
    """Section 3.1.1's joint history [t1:C1 ... t7:C4] — the paper's own
    expected outputs for each mode."""

    def run(self, mode):
        engine = Engine()
        op = build(engine, ["c1", "c2", "c3", "c4"], mode)
        feed(engine, PAPER_TRACE)
        return op

    def test_unrestricted_four_events(self):
        op = self.run(PairingMode.UNRESTRICTED)
        assert sorted(chains(op)) == [
            [1.0, 3.0, 4.0, 7.0],
            [1.0, 3.0, 5.0, 7.0],
            [2.0, 3.0, 4.0, 7.0],
            [2.0, 3.0, 5.0, 7.0],
        ]

    def test_recent_single_event(self):
        op = self.run(PairingMode.RECENT)
        assert chains(op) == [[2.0, 3.0, 5.0, 7.0]]

    def test_chronicle_single_event(self):
        op = self.run(PairingMode.CHRONICLE)
        assert chains(op) == [[1.0, 3.0, 4.0, 7.0]]

    def test_consecutive_no_event(self):
        op = self.run(PairingMode.CONSECUTIVE)
        assert chains(op) == []


class TestBasicSemantics:
    def test_requires_two_args(self):
        engine = Engine()
        engine.create_stream("a", "tagid str")
        with pytest.raises(EslSemanticError):
            SeqOperator(engine, [SeqArg("a")])

    def test_duplicate_aliases_rejected(self):
        engine = Engine()
        engine.create_stream("a", "tagid str")
        with pytest.raises(EslSemanticError):
            SeqOperator(engine, [SeqArg("a"), SeqArg("a")])

    def test_same_stream_twice_with_aliases(self):
        engine = Engine()
        engine.create_stream("a", "tagid str, tagtime float")
        op = SeqOperator(
            engine, [SeqArg("a", alias="x"), SeqArg("a", alias="y")]
        )
        feed(engine, [("a", 1.0), ("a", 2.0)])
        assert chains(op) == [[1.0, 2.0]]

    def test_no_self_match_on_equal_ts(self):
        engine = Engine()
        engine.create_stream("a", "tagid str, tagtime float")
        op = SeqOperator(
            engine, [SeqArg("a", alias="x"), SeqArg("a", alias="y")]
        )
        feed(engine, [("a", 1.0)])
        assert op.matches == []  # a tuple cannot follow itself

    def test_strict_order_required(self):
        engine = Engine()
        op = build(engine, ["a", "b"], PairingMode.UNRESTRICTED)
        feed(engine, [("b", 1.0), ("a", 2.0)])  # wrong order
        assert op.matches == []

    def test_star_args_rejected_here(self):
        engine = Engine()
        engine.create_stream("a", "tagid str")
        engine.create_stream("b", "tagid str")
        with pytest.raises(EslSemanticError):
            SeqOperator(engine, [SeqArg("a", starred=True), SeqArg("b")])

    def test_on_match_callback(self):
        engine = Engine()
        got = []
        op = build(engine, ["a", "b"], PairingMode.RECENT, on_match=got.append)
        feed(engine, [("a", 1.0), ("b", 2.0)])
        assert len(got) == 1 and got[0] is op.matches[0]

    def test_drain_matches(self):
        engine = Engine()
        op = build(engine, ["a", "b"], PairingMode.RECENT)
        feed(engine, [("a", 1.0), ("b", 2.0)])
        assert len(op.drain_matches()) == 1
        assert op.matches == []

    def test_stop_detaches(self):
        engine = Engine()
        op = build(engine, ["a", "b"], PairingMode.RECENT)
        op.stop()
        feed(engine, [("a", 1.0), ("b", 2.0)])
        assert op.matches == []


class TestGuard:
    def make(self, mode):
        engine = Engine()
        guard = lambda b: all(
            t1["tagid"] == t2["tagid"]
            for t1 in b.values() for t2 in b.values()
        )
        op = build(engine, ["a", "b"], mode, guard=guard)
        return engine, op

    def test_guard_filters_unrestricted(self):
        engine, op = self.make(PairingMode.UNRESTRICTED)
        feed_tagged(engine, [("a", "t1", 1.0), ("a", "t2", 2.0), ("b", "t1", 3.0)])
        assert chains(op) == [[1.0, 3.0]]

    def test_guard_steers_recent_selection(self):
        # Most recent *qualifying* tuple: t2@2 does not qualify for b:t1.
        engine, op = self.make(PairingMode.RECENT)
        feed_tagged(engine, [("a", "t1", 1.0), ("a", "t2", 2.0), ("b", "t1", 3.0)])
        assert chains(op) == [[1.0, 3.0]]

    def test_guard_steers_chronicle_selection(self):
        engine, op = self.make(PairingMode.CHRONICLE)
        feed_tagged(engine, [("a", "t2", 1.0), ("a", "t1", 2.0), ("b", "t1", 3.0)])
        assert chains(op) == [[2.0, 3.0]]


class TestChronicleConsumption:
    def test_tuples_used_once(self):
        engine = Engine()
        op = build(engine, ["a", "b"], PairingMode.CHRONICLE)
        feed(engine, [("a", 1.0), ("b", 2.0), ("b", 3.0)])
        # The second b finds no remaining a.
        assert chains(op) == [[1.0, 2.0]]

    def test_earliest_pairing(self):
        engine = Engine()
        op = build(engine, ["a", "b"], PairingMode.CHRONICLE)
        feed(engine, [("a", 1.0), ("a", 2.0), ("b", 3.0), ("b", 4.0)])
        assert chains(op) == [[1.0, 3.0], [2.0, 4.0]]


class TestRecentPurging:
    def test_recent_state_stays_small(self):
        engine = Engine()
        op = build(engine, ["a", "b", "c"], PairingMode.RECENT)
        for i in range(100):
            feed(engine, [("a", float(3 * i)), ("b", float(3 * i + 1))])
        # Dominated tuples are purged: only a bounded frontier remains.
        assert op.state_size <= 4

    def test_unrestricted_state_grows(self):
        engine = Engine()
        op = build(engine, ["a", "b", "c"], PairingMode.UNRESTRICTED)
        for i in range(50):
            feed(engine, [("a", float(3 * i)), ("b", float(3 * i + 1))])
        assert op.state_size == 100

    def test_purge_keeps_needed_history(self):
        """The worked example's C2:t3 must survive the arrival of C2:t6."""
        engine = Engine()
        op = build(engine, ["c1", "c2", "c3", "c4"], PairingMode.RECENT)
        feed(engine, PAPER_TRACE[:-1])  # everything up to t6
        feed(engine, [("c4", 7.0)])
        assert chains(op) == [[2.0, 3.0, 5.0, 7.0]]


class TestConsecutive:
    def test_adjacent_run_matches(self):
        engine = Engine()
        op = build(engine, ["a", "b", "c"], PairingMode.CONSECUTIVE)
        feed(engine, [("a", 1.0), ("b", 2.0), ("c", 3.0)])
        assert chains(op) == [[1.0, 2.0, 3.0]]

    def test_interloper_resets(self):
        engine = Engine()
        op = build(engine, ["a", "b", "c"], PairingMode.CONSECUTIVE)
        feed(engine, [("a", 1.0), ("c", 2.0), ("b", 3.0), ("c", 4.0)])
        assert op.matches == []

    def test_interloper_can_restart(self):
        engine = Engine()
        op = build(engine, ["a", "b"], PairingMode.CONSECUTIVE)
        feed(engine, [("a", 1.0), ("a", 2.0), ("b", 3.0)])
        # Second a interrupts the first but starts a new run.
        assert chains(op) == [[2.0, 3.0]]

    def test_back_to_back_sequences(self):
        engine = Engine()
        op = build(engine, ["a", "b"], PairingMode.CONSECUTIVE)
        feed(engine, [("a", 1.0), ("b", 2.0), ("a", 3.0), ("b", 4.0)])
        assert chains(op) == [[1.0, 2.0], [3.0, 4.0]]

    def test_state_bounded(self):
        engine = Engine()
        op = build(engine, ["a", "b", "c"], PairingMode.CONSECUTIVE)
        for i in range(100):
            feed(engine, [("a", float(2 * i)), ("b", float(2 * i + 1))])
        assert op.state_size <= 2


class TestWindows:
    def test_preceding_window_rejects_slow_sequences(self):
        engine = Engine()
        window = OperatorWindow(10.0, 1, "preceding")
        op = build(engine, ["a", "b"], PairingMode.UNRESTRICTED, window=window)
        feed(engine, [("a", 0.0), ("b", 5.0), ("a", 20.0), ("b", 50.0)])
        assert chains(op) == [[0.0, 5.0]]

    def test_window_evicts_history(self):
        engine = Engine()
        window = OperatorWindow(10.0, 1, "preceding")
        op = build(engine, ["a", "b"], PairingMode.UNRESTRICTED, window=window)
        for i in range(100):
            feed(engine, [("a", float(i * 5))])
        assert op.state_size <= 3  # only the last ~10s of a-tuples retained

    def test_following_window(self):
        engine = Engine()
        window = OperatorWindow(10.0, 0, "following")
        op = build(engine, ["a", "b"], PairingMode.UNRESTRICTED, window=window)
        feed(engine, [("a", 0.0), ("b", 5.0), ("b", 20.0)])
        assert chains(op) == [[0.0, 5.0]]


class TestPartitioning:
    def test_partition_by_tag(self):
        engine = Engine()
        op = build(
            engine, ["a", "b"], PairingMode.CONSECUTIVE,
            partition_by=lambda t: t["tagid"],
        )
        # Interleaved tags would break a global CONSECUTIVE run; per-tag
        # partitions keep each run adjacent.
        feed_tagged(engine, [
            ("a", "t1", 1.0), ("a", "t2", 2.0), ("b", "t1", 3.0), ("b", "t2", 4.0),
        ])
        assert sorted(chains(op)) == [[1.0, 3.0], [2.0, 4.0]]

    def test_partitions_isolated(self):
        engine = Engine()
        op = build(
            engine, ["a", "b"], PairingMode.CHRONICLE,
            partition_by=lambda t: t["tagid"],
        )
        feed_tagged(engine, [("a", "t1", 1.0), ("b", "t2", 2.0)])
        assert op.matches == []


class TestWindowedStateBounded:
    """A window bounds history even for partitions that stop receiving
    tuples: the amortized cross-partition sweep must evict idle tags, or
    UNRESTRICTED mode leaks one history per tag forever."""

    def run_idle_tags(self, n_tags, window):
        engine = Engine()
        op = build(
            engine, ["a", "b"], PairingMode.UNRESTRICTED, window=window,
            partition_by=lambda t: t["tagid"],
        )
        # Every tag emits one 'a' and never completes; virtual time keeps
        # moving, so old tags slide entirely out of the window.
        for i in range(n_tags):
            engine.push("a", {"tagid": f"t{i}", "tagtime": float(i)}, ts=float(i))
        return op

    def test_unrestricted_window_state_is_bounded(self):
        window = OperatorWindow(10.0, 1, "preceding")
        op = self.run_idle_tags(300, window)
        # Only tags within the last window (plus at most one sweep period
        # of lag) may retain history; the other ~280 must be gone.
        assert op.state_size <= 2 * window.duration + 2
        assert len(op._partitions) <= 2 * window.duration + 2

    def test_windowed_matches_survive_sweep(self):
        engine = Engine()
        window = OperatorWindow(10.0, 1, "preceding")
        op = build(
            engine, ["a", "b"], PairingMode.UNRESTRICTED, window=window,
            partition_by=lambda t: t["tagid"],
        )
        feed_tagged(engine, [
            ("a", "t1", 1.0),
            ("a", "t2", 2.0),                        # never completes
            ("b", "t1", 5.0),                        # in-window pair
            ("a", "t3", 40.0), ("b", "t3", 45.0),    # later pair, after sweep
        ])
        assert sorted(chains(op)) == [[1.0, 5.0], [40.0, 45.0]]
        assert "t2" not in op._partitions
