"""Unit tests for trace CSV I/O and the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.dsms import Engine
from repro.dsms.errors import EslSemanticError
from repro.rfid import (
    iter_stream,
    load_trace,
    packing_workload,
    replay,
    save_trace,
)


@pytest.fixture
def trace_file(tmp_path):
    workload = packing_workload(n_cases=3, seed=4)
    path = tmp_path / "packing.csv"
    save_trace(workload.trace, path)
    return path, workload


class TestTraceIO:
    def test_roundtrip_preserves_records(self, trace_file):
        path, workload = trace_file
        loaded = load_trace(path)
        assert len(loaded) == len(workload.trace)
        assert [ts for __, __, ts in loaded] == [
            ts for __, __, ts in workload.trace
        ]

    def test_schema_coercion_with_engine(self, trace_file):
        path, workload = trace_file
        engine = Engine()
        engine.create_stream("r1", "readerid str, tagid str, tagtime float")
        engine.create_stream("r2", "readerid str, tagid str, tagtime float")
        loaded = load_trace(path, engine)
        first = loaded[0][1]
        assert isinstance(first["tagtime"], float)
        assert isinstance(first["tagid"], str)

    def test_missing_fields_become_null(self, tmp_path):
        path = tmp_path / "mixed.csv"
        save_trace(
            [("s", {"a": 1}, 0.0), ("s", {"b": 2}, 1.0)], path
        )
        loaded = load_trace(path)
        assert loaded[0][1]["b"] is None
        assert loaded[1][1]["a"] is None

    def test_reserved_column_names_rejected(self, tmp_path):
        with pytest.raises(EslSemanticError):
            save_trace([("s", {"stream": "x"}, 0.0)], tmp_path / "bad.csv")

    def test_non_trace_file_rejected(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(EslSemanticError):
            load_trace(path)

    def test_loaded_trace_sorted(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        # Hand-build an out-of-order file.
        path.write_text("stream,ts,a\ns,5.0,x\ns,1.0,y\n")
        loaded = load_trace(path)
        assert [ts for __, __, ts in loaded] == [1.0, 5.0]

    def test_replay_feeds_engine(self, trace_file):
        path, workload = trace_file
        engine = Engine()
        engine.create_stream("r1", "readerid str, tagid str, tagtime float")
        engine.create_stream("r2", "readerid str, tagid str, tagtime float")
        got = engine.collect("r1")
        count = replay(engine, load_trace(path, engine))
        assert count == len(workload.trace)
        assert len(got) == sum(1 for s, __, __ in workload.trace if s == "r1")

    def test_replay_time_scale(self):
        engine = Engine()
        engine.create_stream("s", "a str")
        got = engine.collect("s")
        replay(engine, [("s", {"a": "x"}, 10.0)], time_scale=0.1, offset=5.0)
        assert got.results[0].ts == 6.0

    def test_replay_bad_scale(self):
        engine = Engine()
        with pytest.raises(EslSemanticError):
            replay(engine, [], time_scale=0.0)

    def test_iter_stream_filters(self, trace_file):
        __, workload = trace_file
        only_cases = list(iter_stream(workload.trace, "R2"))
        assert only_cases
        assert all(s == "r2" for s, __, __ in only_cases)


class TestCli:
    def write_script(self, tmp_path):
        script = tmp_path / "q.sql"
        script.write_text("""
            CREATE STREAM r1(readerid str, tagid str, tagtime float);
            CREATE STREAM r2(readerid str, tagid str, tagtime float);
            SELECT COUNT(R1*) AS items, R2.tagid AS case_tag
            FROM R1, R2
            WHERE SEQ(R1*, R2) MODE CHRONICLE
            AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
            AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS;
        """)
        return script

    def test_script_plus_trace(self, tmp_path, trace_file, capsys):
        path, workload = trace_file
        script = self.write_script(tmp_path)
        code = main(["--script", str(script), "--trace", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "items,case_tag" in out
        assert out.count("case.") == len(workload.truth)

    def test_explain(self, tmp_path, capsys):
        script = self.write_script(tmp_path)
        code = main(["--script", str(script), "--explain"])
        out = capsys.readouterr().out
        assert code == 0
        assert "StarSeqOperator" in out

    def test_demo(self, capsys):
        code = main(["--demo", "workflow", "--seed", "7"])
        captured = capsys.readouterr()
        assert code == 0
        assert "scenario: example5-workflow" in captured.err

    def test_insert_query_requires_follow(self, tmp_path, capsys):
        script = tmp_path / "ins.sql"
        script.write_text("""
            CREATE STREAM src(a int);
            INSERT INTO dst SELECT a FROM src;
        """)
        code = main(["--script", str(script)])
        assert code == 1
        assert "--follow" in capsys.readouterr().err

    def test_follow_stream(self, tmp_path, capsys):
        script = tmp_path / "ins.sql"
        script.write_text("""
            CREATE STREAM src(a int);
            INSERT INTO dst SELECT a FROM src;
        """)
        trace = tmp_path / "t.csv"
        save_trace([("src", {"a": 1}, 0.0), ("src", {"a": 2}, 1.0)], trace)
        code = main([
            "--script", str(script), "--trace", str(trace), "--follow", "dst",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.splitlines() == ["a", "1", "2"]

    def test_missing_args(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliDemos:
    """Every packaged demo runs end to end through the CLI."""

    @pytest.mark.parametrize("name", [
        "dedup", "location", "epc", "containment", "workflow", "quality",
        "door",
    ])
    def test_demo_runs(self, name, capsys):
        code = main(["--demo", name])
        captured = capsys.readouterr()
        assert code == 0
        assert "scenario:" in captured.err
        assert "output rows:" in captured.err


class TestBenchSubcommand:
    def test_bench_writes_report(self, tmp_path, capsys):
        code = main([
            "bench", "sharded_scaling",
            "--out", str(tmp_path), "--reps", "1", "--size", "10",
            "--executor", "serial",
        ])
        assert code == 0
        report_path = tmp_path / "BENCH_sharded_scaling.json"
        assert report_path.exists()
        import json

        payload = json.loads(report_path.read_text())
        assert payload["name"] == "sharded_scaling"
        assert "cpu_count" in payload["meta"]
        assert payload["meta"]["scaling_mode"] == "weak"
        labels = [entry["label"] for entry in payload["experiments"]]
        assert "single-1x" in labels
        sharded = [
            entry for entry in payload["experiments"]
            if "weak_efficiency" in entry
        ]
        assert [entry["shards"] for entry in sharded] == [1, 2, 4, 8]
        # The workload grows with the shard count (weak scaling) and every
        # sharded arm records whether it was starved of cores.
        assert sharded[-1]["n_tuples"] > sharded[0]["n_tuples"] * 4
        assert all("cpu_limited" in entry for entry in sharded)
        assert all("speedup_vs_single" in entry for entry in sharded)

    def test_bench_operator_state_writes_report(self, tmp_path, capsys):
        code = main([
            "bench", "operator_state",
            "--out", str(tmp_path), "--reps", "1", "--size", "25",
        ])
        assert code == 0
        import json

        payload = json.loads(
            (tmp_path / "BENCH_operator_state.json").read_text()
        )
        assert payload["name"] == "operator_state"
        assert "speedup_indexed_vs_naive" in payload["meta"]
        by_label = {
            entry["label"]: entry for entry in payload["experiments"]
        }
        assert by_label["indexed"]["matches"] == by_label["naive"]["matches"]
        assert "latency_us" in by_label["indexed"]
        for n_idle in (500, 2000):
            assert f"idle-{n_idle}-indexed" in by_label
        # The heartbeat drains the heap arm after the trace ends.
        assert by_label["idle-2000-indexed"]["final_state_size"] == 0

    def test_bench_unknown_name(self):
        with pytest.raises(SystemExit):
            main(["bench", "no_such_benchmark"])
