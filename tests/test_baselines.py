"""Unit and equivalence tests for the two baselines."""

import pytest

from repro.baselines import (
    JoinSequenceBaseline,
    RcedaEngine,
    StarContainmentDetector,
)
from repro.core.operators import PairingMode, SeqArg, make_sequence_operator
from repro.dsms import Engine
from repro.dsms.errors import EslSemanticError
from repro.rfid import packing_workload, uniform_sequence_workload


def feed(engine, trace):
    for stream, ts in trace:
        engine.push(stream, {"tagid": "x", "tagtime": ts}, ts=ts)


class TestJoinBaseline:
    def make(self, engine, streams=("a", "b", "c"), **kw):
        for name in streams:
            if name not in engine.streams:
                engine.create_stream(name, "tagid str, tagtime float")
        return JoinSequenceBaseline(engine, list(streams), **kw)

    def test_basic_sequence(self):
        engine = Engine()
        baseline = self.make(engine, ("a", "b"))
        feed(engine, [("a", 1.0), ("b", 2.0)])
        assert baseline.matches_emitted == 1

    def test_all_combinations(self):
        engine = Engine()
        baseline = self.make(engine, ("a", "b"))
        feed(engine, [("a", 1.0), ("a", 2.0), ("b", 3.0)])
        assert baseline.matches_emitted == 2

    def test_needs_two_streams(self):
        engine = Engine()
        engine.create_stream("a", "x")
        with pytest.raises(EslSemanticError):
            JoinSequenceBaseline(engine, ["a"])

    def test_predicate_applied(self):
        engine = Engine()
        baseline = self.make(
            engine, ("a", "b"),
            predicate=lambda b: b["a"]["tagtime"] >= 1.5,
        )
        feed(engine, [("a", 1.0), ("a", 2.0), ("b", 3.0)])
        assert baseline.matches_emitted == 1

    def test_retention_bounds_state(self):
        engine = Engine()
        baseline = self.make(engine, ("a", "b"), retention=5.0)
        for i in range(100):
            feed(engine, [("a", float(i))])
        assert baseline.state_size <= 7

    def test_unbounded_retention_grows(self):
        engine = Engine()
        baseline = self.make(engine, ("a", "b"))
        for i in range(100):
            feed(engine, [("a", float(i))])
        assert baseline.state_size == 100

    def test_join_probes_counted(self):
        engine = Engine()
        baseline = self.make(engine, ("a", "b"))
        feed(engine, [("a", 1.0), ("a", 2.0), ("a", 3.0), ("b", 4.0)])
        assert baseline.join_probes == 3

    def test_matches_unrestricted_seq_exactly(self):
        """Paper footnote 3: the join formulation == UNRESTRICTED SEQ."""
        workload = uniform_sequence_workload(
            n_streams=3, n_tuples=400, n_tags=4, seed=9
        )
        streams = ["s0", "s1", "s2"]

        engine = Engine()
        for name in streams:
            engine.create_stream(name, "tagid str, tagtime float")
        seq_op = make_sequence_operator(
            engine, [SeqArg(s) for s in streams],
            mode=PairingMode.UNRESTRICTED,
        )
        baseline = JoinSequenceBaseline(engine, streams)
        engine.run_trace(workload.trace)

        seq_keys = sorted(
            tuple((t.ts, t.seq) for t in m.all_tuples()) for m in seq_op.matches
        )
        join_keys = sorted(
            tuple(
                (binding[s].ts, binding[s].seq) for s in streams
            )
            for binding in baseline.matches
        )
        assert seq_keys == join_keys

    def test_stop(self):
        engine = Engine()
        baseline = self.make(engine, ("a", "b"))
        baseline.stop()
        feed(engine, [("a", 1.0), ("b", 2.0)])
        assert baseline.matches_emitted == 0


class TestRcedaGraph:
    def make(self):
        engine = Engine()
        engine.create_stream("a", "tagid str, tagtime float")
        engine.create_stream("b", "tagid str, tagtime float")
        graph = RcedaEngine(engine)
        return engine, graph

    def test_primitive_node_collects(self):
        engine, graph = self.make()
        node = graph.primitive("a")
        feed(engine, [("a", 1.0), ("a", 2.0)])
        assert node.state_size == 2

    def test_seq_node_unrestricted_pairing(self):
        engine, graph = self.make()
        seq = graph.seq(graph.primitive("a"), graph.primitive("b"))
        feed(engine, [("a", 1.0), ("a", 2.0), ("b", 3.0)])
        assert len(seq.instances) == 2

    def test_seq_within(self):
        engine, graph = self.make()
        seq = graph.seq(graph.primitive("a"), graph.primitive("b"), within=1.0)
        feed(engine, [("a", 0.0), ("b", 5.0), ("a", 6.0), ("b", 6.5)])
        assert len(seq.instances) == 1

    def test_and_node(self):
        engine, graph = self.make()
        both = graph.and_(graph.primitive("a"), graph.primitive("b"))
        feed(engine, [("b", 1.0), ("a", 2.0)])  # any order
        assert len(both.instances) == 1

    def test_or_node(self):
        engine, graph = self.make()
        either = graph.or_(graph.primitive("a"), graph.primitive("b"))
        feed(engine, [("a", 1.0), ("b", 2.0)])
        assert len(either.instances) == 2

    def test_not_node_lazy_evaluation(self):
        engine, graph = self.make()
        negated = graph.not_(
            graph.primitive("a"), graph.primitive("b"), before=1.0, after=1.0
        )
        feed(engine, [("a", 0.0), ("b", 0.5),   # vetoed
                      ("a", 10.0)])               # clean
        negated.evaluate(now=20.0)
        assert len(negated.instances) == 1
        assert negated.instances[0].start == 10.0

    def test_state_grows_without_sweep(self):
        """The paper's critique: no automatic purging."""
        engine, graph = self.make()
        graph.seq(graph.primitive("a"), graph.primitive("b"), within=1.0)
        for i in range(200):
            feed(engine, [("a", float(i * 10))])
        assert graph.state_size >= 200
        dropped = graph.sweep(horizon=1500.0)
        assert dropped > 0
        assert graph.state_size < 200

    def test_star_node_runs(self):
        engine, graph = self.make()
        star = graph.star(graph.primitive("a"), max_gap=1.0)
        feed(engine, [("a", 0.0), ("a", 0.5), ("a", 5.0)])
        runs = star.runs_before(6.0, within=None)
        assert [len(r.tuples) for r in runs] == [2, 1]


class TestRcedaContainment:
    def test_matches_ground_truth(self):
        workload = packing_workload(n_cases=15)
        engine = Engine()
        engine.create_stream("r1", "readerid str, tagid str, tagtime float")
        engine.create_stream("r2", "readerid str, tagid str, tagtime float")
        detector = StarContainmentDetector(
            engine, "r1", "r2", intra_gap=1.0, case_delay=5.0
        )
        engine.run_trace(workload.trace)
        detected = {case: tuple(items) for case, items in detector.results}
        expected = {case: tuple(items) for case, items in workload.truth.items()}
        assert detected == expected

    def test_holds_more_state_than_eslev(self):
        workload = packing_workload(n_cases=30)
        # ESL-EV operator
        from repro.rfid import build_containment

        scenario = build_containment(workload).feed()
        eslev_state = scenario.handle.operator.state_size
        # RCEDA graph
        engine = Engine()
        engine.create_stream("r1", "readerid str, tagid str, tagtime float")
        engine.create_stream("r2", "readerid str, tagid str, tagtime float")
        detector = StarContainmentDetector(engine, "r1", "r2")
        engine.run_trace(workload.trace)
        assert detector.state_size > eslev_state
