"""Unit tests for the virtual clock and timer service (Active Expiration)."""

import pytest

from repro.dsms.clock import VirtualClock, make_clock
from repro.dsms.errors import ClockError


class TestAdvance:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_advance_backwards_raises(self):
        clock = VirtualClock()
        clock.advance(5.0)
        with pytest.raises(ClockError):
            clock.advance(4.0)

    def test_advance_same_time_ok(self):
        clock = VirtualClock()
        clock.advance(5.0)
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_started_flag(self):
        clock = VirtualClock()
        assert not clock.started
        clock.advance(0.0)
        assert clock.started


class TestTimers:
    def test_timer_fires_at_deadline(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(10.0, fired.append)
        clock.advance(9.9)
        assert fired == []
        clock.advance(10.0)
        assert fired == [10.0]

    def test_timer_fires_when_overshot(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(10.0, fired.append)
        clock.advance(100.0)
        assert fired == [10.0]  # callback sees its own deadline

    def test_timers_fire_in_deadline_order(self):
        clock = VirtualClock()
        order = []
        clock.schedule(20.0, lambda t: order.append("b"))
        clock.schedule(10.0, lambda t: order.append("a"))
        clock.schedule(30.0, lambda t: order.append("c"))
        clock.advance(50.0)
        assert order == ["a", "b", "c"]

    def test_equal_deadlines_fire_in_schedule_order(self):
        clock = VirtualClock()
        order = []
        clock.schedule(10.0, lambda t: order.append(1))
        clock.schedule(10.0, lambda t: order.append(2))
        clock.advance(10.0)
        assert order == [1, 2]

    def test_cancelled_timer_skipped(self):
        clock = VirtualClock()
        fired = []
        timer = clock.schedule(10.0, fired.append)
        timer.cancel()
        clock.advance(20.0)
        assert fired == []

    def test_pending_timers_counts_armed_only(self):
        clock = VirtualClock()
        clock.schedule(10.0, lambda t: None)
        timer = clock.schedule(20.0, lambda t: None)
        timer.cancel()
        assert clock.pending_timers() == 1

    def test_advance_returns_fire_count(self):
        clock = VirtualClock()
        clock.schedule(1.0, lambda t: None)
        clock.schedule(2.0, lambda t: None)
        assert clock.advance(5.0) == 2

    def test_callback_scheduling_new_timer_same_advance(self):
        clock = VirtualClock()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 3:
                clock.schedule(t + 1, chain)

        clock.schedule(1.0, chain)
        clock.advance(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_past_deadline_fires_on_next_advance_not_synchronously(self):
        clock = VirtualClock()
        clock.advance(10.0)
        fired = []
        clock.schedule(5.0, fired.append)
        assert fired == []  # not synchronous
        clock.advance(10.0)  # zero-width advance
        assert fired == [5.0]


class TestDrain:
    def test_drain_fires_everything(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(100.0, fired.append)
        clock.schedule(200.0, fired.append)
        count = clock.drain()
        assert count == 2
        assert fired == [100.0, 200.0]
        assert clock.now >= 200.0

    def test_drain_skips_cancelled(self):
        clock = VirtualClock()
        timer = clock.schedule(100.0, lambda t: None)
        timer.cancel()
        assert clock.drain() == 0

    def test_drain_handles_cascading_timers(self):
        clock = VirtualClock()
        fired = []

        def cascade(t):
            fired.append(t)
            if len(fired) < 3:
                clock.schedule(t + 10, cascade)

        clock.schedule(10.0, cascade)
        clock.drain()
        assert fired == [10.0, 20.0, 30.0]


class TestMakeClock:
    def test_passthrough(self):
        clock = VirtualClock()
        assert make_clock(clock) is clock

    def test_fresh(self):
        assert isinstance(make_clock(None), VirtualClock)
