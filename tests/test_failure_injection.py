"""Failure-injection integration tests.

Real RFID feeds are messy: duplicated reports, missed reads, timestamp
jitter (out-of-order delivery), and ghost tags.  These tests drive the
paper's queries through that mess and check the behaviour degrades the way
the design intends — reorder buffers restore order, dedup absorbs
duplicates, missed reads lose only the affected sequences, ghosts never
crash expression evaluation.
"""

import random

import pytest

from repro.dsms import Engine
from repro.dsms.errors import OutOfOrderError
from repro.rfid import ReaderModel, build_quality_check, quality_check_workload


class TestOutOfOrderDelivery:
    def test_strict_stream_rejects_jitter(self):
        engine = Engine()
        engine.create_stream("s", "tagid str")
        engine.push("s", {"tagid": "a"}, ts=5.0)
        with pytest.raises(OutOfOrderError):
            engine.stream("s").push_row(["b"], ts=4.0)

    def test_reorder_buffer_restores_seq_detection(self):
        """Jittered arrivals within the slack are re-sorted before the
        operator sees them, so SEQ still fires."""
        engine = Engine()
        engine.create_stream("a", "tagid str, tagtime float",
                             allow_out_of_order=True, reorder_slack=2.0)
        engine.create_stream("b", "tagid str, tagtime float")
        handle = engine.query(
            "SELECT A.tagtime, B.tagtime FROM a AS A, b AS B WHERE SEQ(A, B)"
        )
        # Two a-tuples arrive swapped (1.4 before 1.0) within the slack.
        stream = engine.stream("a")
        stream.push_row(["x", 1.4], ts=1.4)
        stream.push_row(["x", 1.0], ts=1.0)
        stream.flush()
        engine.push("b", {"tagid": "x", "tagtime": 5.0}, ts=5.0)
        # Both a tuples were delivered, in timestamp order.
        assert len(handle.rows()) == 2
        assert handle.rows()[0]["tagtime"] in (1.0, 1.4)

    def test_out_of_order_error_carries_structured_context(self):
        engine = Engine()
        engine.create_stream("s", "tagid str")
        engine.push("s", {"tagid": "a"}, ts=5.0)
        with pytest.raises(OutOfOrderError) as excinfo:
            engine.stream("s").push_row(["b"], ts=4.0)
        err = excinfo.value
        assert err.stream == "s"
        assert err.ts == 4.0
        assert err.last_ts == 5.0

    def test_equal_ts_reorder_is_deterministic(self):
        """Jittered tuples that tie on timestamp leave the reorder buffer
        in arrival order, identically across runs with the same seed."""

        def run():
            rng = random.Random(42)
            engine = Engine()
            stream = engine.create_stream(
                "s", "tagid str", allow_out_of_order=True, reorder_slack=5.0
            )
            got = engine.collect("s")
            # Batches of ties at ts 1.0, 2.0, ... arrive shuffled within
            # the slack; ties carry distinct ids so order is observable.
            rows = [
                (f"t{batch}.{i}", float(batch))
                for batch in range(1, 5)
                for i in range(4)
            ]
            rng.shuffle(rows)
            for tagid, ts in rows:
                stream.push_row([tagid], ts=ts)
            stream.flush()
            arrival = [tagid for tagid, _ts in rows]
            return [t["tagid"] for t in got], arrival

        first, arrival_a = run()
        second, arrival_b = run()
        assert first == second
        assert arrival_a == arrival_b
        # Timestamps are released in order, and tied tuples keep their
        # arrival order (the buffer sorts stably on ts alone).
        by_batch = {}
        for tagid in first:
            by_batch.setdefault(tagid.split(".")[0], []).append(tagid)
        assert sorted(first, key=lambda t: float(t[1])) == first
        for batch, members in by_batch.items():
            in_arrival = [t for t in arrival_a if t.startswith(batch + ".")]
            assert members == in_arrival

    def test_stale_tuples_dropped_beyond_slack(self):
        engine = Engine()
        stream = engine.create_stream(
            "s", "tagid str", allow_out_of_order=True, reorder_slack=1.0
        )
        got = engine.collect("s")
        stream.push_row(["fresh"], ts=100.0)
        stream.push_row(["ancient"], ts=1.0)  # hopeless: dropped
        stream.flush()
        assert [t["tagid"] for t in got] == ["fresh"]


class TestNoisyReaders:
    def make_noisy_trace(self, miss_rate=0.0, drop_rate=0.0, ghost_rate=0.0,
                         seed=5):
        """Products pass four checkpoints; each checkpoint reader is noisy."""
        rng = random.Random(seed)
        readers = [
            ReaderModel(f"c{i+1}", miss_rate=miss_rate, drop_rate=drop_rate,
                        ghost_rate=ghost_rate, rng=random.Random(seed + i))
            for i in range(4)
        ]
        records = []
        complete = set()
        t = 0.0
        for product in range(30):
            tag = f"20.9.{9000 + product}"
            seen_all = True
            t0 = t
            for step, reader in enumerate(readers):
                t0 += rng.uniform(2.0, 5.0)
                reports = reader.observe(tag, t0)
                if not any(r.tag_id == tag for r in reports):
                    seen_all = False
                for report in reports:
                    records.append((
                        f"c{step+1}",
                        {"readerid": report.reader_id, "tagid": report.tag_id,
                         "tagtime": report.ts},
                        report.ts,
                    ))
            if seen_all:
                complete.add(tag)
            t += rng.uniform(1.0, 3.0)
        records.sort(key=lambda record: record[2])
        return records, complete

    def run_quality(self, records):
        engine = Engine()
        for name in ("c1", "c2", "c3", "c4"):
            engine.create_stream(name, "readerid str, tagid str, tagtime float")
        handle = engine.query("""
            SELECT C1.tagid FROM c1, c2, c3, c4
            WHERE SEQ(C1, C2, C3, C4) MODE RECENT
            AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid
        """)
        engine.run_trace(records)
        return {row["tagid"] for row in handle.rows()}

    def test_clean_feed_detects_everything(self):
        records, complete = self.make_noisy_trace()
        assert self.run_quality(records) == complete

    def test_missed_reads_lose_only_affected_products(self):
        records, complete = self.make_noisy_trace(miss_rate=0.3)
        detected = self.run_quality(records)
        # Nothing phantom, and exactly the fully-read products detected.
        assert detected == complete
        assert len(complete) < 30  # the noise actually bit

    def test_ghost_reads_are_harmless(self):
        records, complete = self.make_noisy_trace(ghost_rate=0.5)
        detected = self.run_quality(records)
        # Ghost readings only ADD tuples under other tag ids; with per-tag
        # partitioning they cannot remove a true product's detection.
        assert complete <= detected
        # Any extra detections would be ghost coincidences (a corrupted tag
        # completing all four steps) — possible in principle, absent here.
        assert detected - complete == set()

    def test_duplicates_do_not_double_count_chronicle(self):
        """CHRONICLE consumes per match, so duplicate checkpoint reports
        cannot manufacture extra sequence completions per tag."""
        records, complete = self.make_noisy_trace(drop_rate=0.0)
        # Duplicate every record (same timestamps: stable order preserved).
        doubled = []
        for stream, row, ts in records:
            doubled.append((stream, dict(row), ts))
            doubled.append((stream, dict(row), ts))
        engine = Engine()
        for name in ("c1", "c2", "c3", "c4"):
            engine.create_stream(name, "readerid str, tagid str, tagtime float")
        handle = engine.query("""
            SELECT C1.tagid FROM c1, c2, c3, c4
            WHERE SEQ(C1, C2, C3, C4) MODE RECENT
            AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid
        """)
        engine.run_trace(doubled)
        detected = {row["tagid"] for row in handle.rows()}
        assert detected == complete  # same set, even if more match events


class TestDedupFrontEnd:
    def test_dedup_feeds_clean_stream_into_seq(self):
        """The paper's composition: Example 1 dedup -> derived stream ->
        downstream SEQ query consumes the clean stream."""
        engine = Engine()
        engine.create_stream("raw", "reader_id str, tag_id str, read_time float")
        engine.create_stream("clean", "reader_id str, tag_id str, read_time float")
        engine.create_stream("gate", "reader_id str, tag_id str, read_time float")
        engine.query("""
            INSERT INTO clean
            SELECT * FROM raw AS r1 WHERE NOT EXISTS
              (SELECT * FROM TABLE(raw OVER
                 (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
               WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)
        """)
        pairs = engine.query("""
            SELECT C.tag_id FROM clean AS C, gate AS G
            WHERE SEQ(C, G) MODE CHRONICLE AND C.tag_id = G.tag_id
        """)
        # A burst of duplicates, then the gate reading.
        for ts in (0.0, 0.2, 0.4, 0.6):
            engine.push("raw", {"reader_id": "r", "tag_id": "t1",
                                "read_time": ts}, ts=ts)
        engine.push("gate", {"reader_id": "g", "tag_id": "t1",
                             "read_time": 5.0}, ts=5.0)
        # CHRONICLE pairs the single deduplicated reading once.
        assert len(pairs.rows()) == 1


class TestBruteForceReference:
    def test_exception_automaton_matches_reference(self):
        """The EXCEPTION_SEQ automaton (CONSECUTIVE) against a direct
        simulation of the paper's rules, over random traces."""
        rng = random.Random(11)
        for trial in range(50):
            n_events = rng.randint(1, 25)
            trace = [
                (rng.choice(["a", "b", "c"]), float(i))
                for i in range(n_events)
            ]
            # Reference: explicit state machine per the paper's scenarios.
            expected = []
            partial = 0  # completion level
            order = {"a": 0, "b": 1, "c": 2}
            for stream, ts in trace:
                stage = order[stream]
                if stage == partial:
                    partial += 1
                    if partial == 3:
                        expected.append(("completed", 3))
                        partial = 0
                elif partial > 0:
                    expected.append(("wrong_tuple", partial))
                    partial = 1 if stage == 0 else 0
                else:
                    expected.append(("wrong_start", 0))
            # Actual.
            from repro.core.operators import ExceptionSeqOperator, SeqArg

            engine = Engine()
            for name in ("a", "b", "c"):
                engine.create_stream(name, "tagid str, tagtime float")
            op = ExceptionSeqOperator(
                engine, [SeqArg("a"), SeqArg("b"), SeqArg("c")]
            )
            for stream, ts in trace:
                engine.push(stream, {"tagid": "x", "tagtime": ts}, ts=ts)
            got = [(o.reason.value, o.level) for o in op.outcomes]
            assert got == expected, f"trial {trial}: {trace}"
