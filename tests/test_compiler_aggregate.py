"""Integration tests for compiled aggregate queries."""

import pytest

from repro.dsms import Engine


@pytest.fixture
def vitals(engine):
    """Sensor data associated with RFID identities (paper section 2.1)."""
    engine.create_stream("vitals", "patient str, bp float, tagtime float")
    return engine


def feed(engine, rows):
    for index, (patient, bp) in enumerate(rows):
        engine.push(
            "vitals",
            {"patient": patient, "bp": float(bp), "tagtime": float(index)},
            ts=float(index),
        )


class TestRunningAggregates:
    def test_count_emits_per_arrival(self, vitals):
        handle = vitals.query("SELECT count(bp) FROM vitals")
        feed(vitals, [("p1", 120), ("p1", 130)])
        assert [r["count_bp"] for r in handle.rows()] == [1, 2]

    def test_min_max_running(self, vitals):
        handle = vitals.query("SELECT min(bp), max(bp) FROM vitals")
        feed(vitals, [("p1", 120), ("p1", 90), ("p1", 150)])
        assert handle.rows()[-1] == {"min_bp": 90.0, "max_bp": 150.0}

    def test_avg(self, vitals):
        handle = vitals.query("SELECT avg(bp) FROM vitals")
        feed(vitals, [("p1", 100), ("p1", 200)])
        assert handle.rows()[-1]["avg_bp"] == 150.0

    def test_count_star(self, vitals):
        handle = vitals.query("SELECT count(*) FROM vitals")
        feed(vitals, [("p1", 120), ("p2", 130), ("p3", 110)])
        assert handle.rows()[-1]["count_all"] == 3

    def test_where_applies_before_aggregation(self, vitals):
        handle = vitals.query(
            "SELECT count(bp) FROM vitals WHERE bp > 125"
        )
        feed(vitals, [("p1", 120), ("p1", 130), ("p1", 140)])
        assert [r["count_bp"] for r in handle.rows()] == [1, 2]

    def test_aggregate_inside_expression(self, vitals):
        handle = vitals.query("SELECT max(bp) - min(bp) AS spread FROM vitals")
        feed(vitals, [("p1", 100), ("p1", 140)])
        assert handle.rows()[-1]["spread"] == 40.0


class TestGroupBy:
    def test_per_patient_counts(self, vitals):
        handle = vitals.query(
            "SELECT patient, count(bp) FROM vitals GROUP BY patient"
        )
        feed(vitals, [("p1", 120), ("p2", 110), ("p1", 130)])
        rows = handle.rows()
        assert rows[0] == {"patient": "p1", "count_bp": 1}
        assert rows[1] == {"patient": "p2", "count_bp": 1}
        assert rows[2] == {"patient": "p1", "count_bp": 2}

    def test_group_key_expression(self, vitals):
        handle = vitals.query(
            "SELECT upper(patient) AS who, max(bp) FROM vitals "
            "GROUP BY upper(patient)"
        )
        feed(vitals, [("p1", 120), ("p1", 150)])
        assert handle.rows()[-1] == {"who": "P1", "max_bp": 150.0}

    def test_having_filters_emission(self, vitals):
        handle = vitals.query(
            "SELECT patient, count(bp) FROM vitals GROUP BY patient "
            "HAVING count(bp) >= 2"
        )
        feed(vitals, [("p1", 120), ("p2", 110), ("p1", 130)])
        assert handle.rows() == [{"patient": "p1", "count_bp": 2}]


class TestWindowedAggregates:
    def test_range_window_recomputes(self, vitals):
        handle = vitals.query(
            "SELECT count(bp) FROM TABLE(vitals OVER "
            "(RANGE 2 SECONDS PRECEDING CURRENT)) AS w"
        )
        # ts = 0, 1, 2, 3...: window covers [t-2, t].
        feed(vitals, [("p1", 1), ("p1", 2), ("p1", 3), ("p1", 4)])
        assert [r["count_bp"] for r in handle.rows()] == [1, 2, 3, 3]

    def test_rows_window(self, vitals):
        handle = vitals.query(
            "SELECT sum(bp) FROM TABLE(vitals OVER (ROWS 2 PRECEDING)) AS w"
        )
        feed(vitals, [("p1", 1), ("p1", 2), ("p1", 3)])
        assert [r["sum_bp"] for r in handle.rows()] == [1.0, 3.0, 5.0]

    def test_windowed_group_by(self, vitals):
        handle = vitals.query(
            "SELECT patient, count(bp) FROM TABLE(vitals OVER "
            "(RANGE 1 SECONDS PRECEDING CURRENT)) AS w GROUP BY patient"
        )
        feed(vitals, [("p1", 1), ("p2", 2), ("p1", 3)])
        # At ts=2 the window holds ts in [1, 2]: one p1 (ts=2? no - p1 at 0
        # expired), so the p1 count at the last arrival is 1.
        assert handle.rows()[-1] == {"patient": "p1", "count_bp": 1}


class TestUdaIntegration:
    def test_python_uda_via_sql(self, vitals):
        from repro.dsms import uda_from_callables

        vitals.register_uda(
            "bp_range",
            uda_from_callables(
                "bp_range",
                initialize=lambda: (None, None),
                iterate=lambda s, v: (
                    v if s[0] is None else min(s[0], v),
                    v if s[1] is None else max(s[1], v),
                ),
                terminate=lambda s: None if s[0] is None else s[1] - s[0],
            ),
        )
        handle = vitals.query("SELECT bp_range(bp) FROM vitals")
        feed(vitals, [("p1", 100), ("p1", 160), ("p1", 130)])
        assert handle.rows()[-1]["bp_range_bp"] == 60.0

    def test_insert_aggregate_into_stream(self, vitals):
        vitals.query(
            "INSERT INTO bp_counts SELECT count(bp) FROM vitals"
        )
        got = vitals.collect("bp_counts")
        feed(vitals, [("p1", 120), ("p1", 130)])
        assert [r["count_bp"] for r in got.rows()] == [1, 2]


class TestOneShotTableAggregates:
    def test_table_aggregate(self, engine):
        engine.query("CREATE TABLE t(v int)")
        engine.query("INSERT INTO t VALUES (1), (2), (3)")
        handle = engine.query("SELECT sum(v), count(v) FROM t")
        assert handle.rows() == [{"sum_v": 6, "count_v": 3}]

    def test_table_filter_rows(self, engine):
        engine.query("CREATE TABLE t(v int)")
        engine.query("INSERT INTO t VALUES (1), (5)")
        handle = engine.query("SELECT v FROM t WHERE v > 2")
        assert handle.rows() == [{"v": 5}]

    def test_table_cartesian(self, engine):
        engine.query("CREATE TABLE a(x int)")
        engine.query("CREATE TABLE b(y int)")
        engine.query("INSERT INTO a VALUES (1), (2)")
        engine.query("INSERT INTO b VALUES (10)")
        handle = engine.query("SELECT x, y FROM a, b")
        assert len(handle.rows()) == 2
