"""Unit tests for repro.dsms.tuples."""

import pytest

from repro.dsms.errors import SchemaError
from repro.dsms.schema import Schema
from repro.dsms.tuples import Tuple

SCHEMA = Schema.parse("reader_id str, tag_id str, read_time float")


def make(reader="r1", tag="t1", rt=1.0, ts=1.0):
    return Tuple(SCHEMA, [reader, tag, rt], ts)


class TestConstruction:
    def test_positional_values(self):
        tup = make()
        assert tup["reader_id"] == "r1"
        assert tup["tag_id"] == "t1"

    def test_arity_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Tuple(SCHEMA, ["r1", "t1"], 0.0)

    def test_from_mapping(self):
        tup = Tuple.from_mapping(SCHEMA, {"tag_id": "t9"}, ts=2.0)
        assert tup["tag_id"] == "t9"
        assert tup["reader_id"] is None  # missing fields become NULL

    def test_from_mapping_rejects_unknown_fields(self):
        with pytest.raises(SchemaError):
            Tuple.from_mapping(SCHEMA, {"bogus": 1}, ts=0.0)

    def test_timestamp_coerced_to_float(self):
        tup = Tuple(SCHEMA, ["r", "t", 1], ts=3)
        assert isinstance(tup.ts, float)

    def test_sequence_numbers_monotone(self):
        first = make()
        second = make()
        assert second.seq > first.seq


class TestAccess:
    def test_get_with_default(self):
        tup = make()
        assert tup.get("missing", 42) == 42
        assert tup.get("tag_id") == "t1"

    def test_contains(self):
        tup = make()
        assert "tag_id" in tup
        assert "missing" not in tup
        assert 3 not in tup

    def test_as_dict(self):
        assert make(rt=5.0).as_dict() == {
            "reader_id": "r1", "tag_id": "t1", "read_time": 5.0,
        }

    def test_iter_and_len(self):
        tup = make()
        assert len(tup) == 3
        assert list(tup) == ["r1", "t1", 1.0]


class TestDerivation:
    def test_replace(self):
        tup = make().replace(tag_id="t2")
        assert tup["tag_id"] == "t2"
        assert tup["reader_id"] == "r1"

    def test_replace_does_not_mutate_original(self):
        original = make()
        original.replace(tag_id="zzz")
        assert original["tag_id"] == "t1"

    def test_with_ts(self):
        tup = make(ts=1.0).with_ts(9.0)
        assert tup.ts == 9.0

    def test_project(self):
        tup = make()
        projected = tup.project(["tag_id"])
        assert projected.as_dict() == {"tag_id": "t1"}
        assert projected.ts == tup.ts


class TestOrdering:
    def test_orders_by_timestamp(self):
        early = make(ts=1.0)
        late = make(ts=2.0)
        assert early < late

    def test_ties_broken_by_arrival(self):
        first = make(ts=1.0)
        second = make(ts=1.0)
        assert first < second

    def test_le(self):
        first = make(ts=1.0)
        assert first <= first

    def test_sorting(self):
        tuples = [make(ts=3.0), make(ts=1.0), make(ts=2.0)]
        assert [t.ts for t in sorted(tuples)] == [1.0, 2.0, 3.0]


class TestEquality:
    def test_equal_values(self):
        a = Tuple(SCHEMA, ["r", "t", 1.0], 1.0)
        b = Tuple(SCHEMA, ["r", "t", 1.0], 1.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_ts(self):
        a = Tuple(SCHEMA, ["r", "t", 1.0], 1.0)
        b = Tuple(SCHEMA, ["r", "t", 1.0], 2.0)
        assert a != b

    def test_repr_contains_fields(self):
        text = repr(make())
        assert "tag_id" in text and "r1" in text
